package relay

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rex/internal/event"
	"rex/internal/journal"
)

// FeedConfig wires one collector's journal to a receiver.
type FeedConfig struct {
	// ID names the feed; the receiver keys resume cursors and staleness
	// by it, so it must be stable across collector restarts.
	ID string
	// Dir is the journal directory the feed tails.
	Dir string
	// Addr is the receiver's address, dialed with Dial (default TCP).
	Addr string
	Dial func() (net.Conn, error)
	// MinBackoff/MaxBackoff bound the jittered exponential redial
	// backoff, the PeerManager discipline: failures double the wait up
	// to MaxBackoff, a successful handshake resets it.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// HeartbeatEvery paces heartbeats while caught up (default 1s).
	HeartbeatEvery time.Duration
	// WriteTimeout bounds every frame write (default 10s).
	WriteTimeout time.Duration
	// AckTimeout is the read deadline for receiver traffic. The
	// receiver acks at least every heartbeat, so silence this long —
	// default 4×HeartbeatEvery — means the return path is dead (a
	// one-way partition: our writes "succeed", nothing comes back) and
	// the session is torn down for a clean resume.
	AckTimeout time.Duration
	// IdleWatermark, when set, is sampled while caught up and sent as
	// the heartbeat watermark if it is ahead of the last event's time.
	// A live collector stamps events with its own clock, so it can
	// promise "nothing earlier than now" and keep the merge gate open
	// while idle; replayed/simulated feeds leave this nil and promise
	// only up to their last event.
	IdleWatermark func() time.Time
	// Seed randomizes backoff jitter (0 is a valid fixed seed).
	Seed int64
}

func (c FeedConfig) withDefaults() FeedConfig {
	if c.Dial == nil {
		addr := c.Addr
		c.Dial = func() (net.Conn, error) { return net.DialTimeout("tcp", addr, 10*time.Second) }
	}
	if c.MinBackoff <= 0 {
		c.MinBackoff = DefaultMinBackoff
	}
	if c.MaxBackoff < c.MinBackoff {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.MaxBackoff < c.MinBackoff {
		c.MaxBackoff = c.MinBackoff
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 4 * c.HeartbeatEvery
	}
	return c
}

// Feed streams one journal to the receiver, forever: dial, handshake,
// replay from the acked sequence, then follow the journal tail. Every
// failure — dial refused, connection cut, stalled writes, a one-way
// partition starving the ack path — collapses to the same recovery:
// tear the session down, back off with jitter, redial, resume exactly
// where the receiver's ack says.
type Feed struct {
	cfg   FeedConfig
	acked atomic.Uint64 // receiver's durable cursor: safe trim floor

	wake      chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
	rng       *rand.Rand
}

// NewFeed builds a feed; call Run to start it.
func NewFeed(cfg FeedConfig) *Feed {
	return &Feed{
		cfg:    cfg.withDefaults(),
		wake:   make(chan struct{}, 1),
		closed: make(chan struct{}),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Wake nudges a caught-up feed to rescan the journal now instead of at
// the next heartbeat — the journal Options.OnAppend hook.
func (f *Feed) Wake() {
	select {
	case f.wake <- struct{}{}:
	default:
	}
}

// Acked returns the receiver's last acked cursor: every record below
// it is durable at the receiver, so the local journal may be trimmed
// to it (and no further).
func (f *Feed) Acked() uint64 { return f.acked.Load() }

// Close stops Run; safe to call multiple times and concurrently.
func (f *Feed) Close() { f.closeOnce.Do(func() { close(f.closed) }) }

// Run dials and streams until Close. It returns only then.
func (f *Feed) Run() {
	backoff := f.cfg.MinBackoff
	for {
		select {
		case <-f.closed:
			return
		default:
		}
		conn, err := f.cfg.Dial()
		if err != nil {
			mDialFailures.With(f.cfg.ID).Inc()
			if !f.sleep(f.jittered(backoff)) {
				return
			}
			backoff = f.doubled(backoff)
			continue
		}
		handshook := f.session(conn)
		conn.Close()
		if handshook {
			backoff = f.cfg.MinBackoff
		} else {
			mDialFailures.With(f.cfg.ID).Inc()
		}
		if !f.sleep(f.jittered(backoff)) {
			return
		}
		if !handshook {
			backoff = f.doubled(backoff)
		}
	}
}

// session runs one connection to completion. It returns whether the
// handshake succeeded (backoff resets only then).
func (f *Feed) session(conn net.Conn) bool {
	id := f.cfg.ID
	buf := make([]byte, 0, 4096)

	conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
	if _, err := conn.Write(appendHello(buf[:0], id)); err != nil {
		return false
	}
	conn.SetReadDeadline(time.Now().Add(f.cfg.AckTimeout))
	kind, payload, err := readFrame(conn, buf[:0])
	if err != nil || kind != kindAck {
		return false
	}
	next, err := parseAck(payload)
	if err != nil {
		return false
	}
	f.storeAckedMax(next)
	mSessions.With(id).Inc()

	// The reader consumes acks for the rest of the session. Its read
	// deadline doubles as the liveness check: if acks stop flowing —
	// receiver dead, or a one-way partition swallowing its replies —
	// it kills the connection so the writer's next frame fails fast.
	connDead := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		defer close(connDead)
		defer conn.Close()
		rbuf := make([]byte, 0, 64)
		for {
			conn.SetReadDeadline(time.Now().Add(f.cfg.AckTimeout))
			kind, p, err := readFrame(conn, rbuf)
			if err != nil {
				return
			}
			if kind == kindAck {
				if a, aerr := parseAck(p); aerr == nil {
					f.storeAckedMax(a)
					mAckedSeq.With(id).Set(int64(a))
				}
			}
		}
	}()
	defer readerWG.Wait()
	defer conn.Close()

	var watermark time.Time
	hb := time.NewTimer(f.cfg.HeartbeatEvery)
	defer hb.Stop()
	for {
		// Stream everything at or above the cursor, in journal order.
		_, err := journal.Scan(f.cfg.Dir, next, func(seq uint64, e *event.Event) error {
			frame, ferr := appendEventFrame(buf[:0], seq, e)
			if ferr != nil {
				// An unencodable event cannot happen for journaled
				// records (they round-tripped once already); skip it
				// rather than wedge the feed on it forever.
				return nil
			}
			buf = frame
			conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
			if _, werr := conn.Write(frame); werr != nil {
				return fmt.Errorf("relay feed write: %w", werr)
			}
			next = seq + 1
			if e.Time.After(watermark) {
				watermark = e.Time
			}
			mSent.With(id).Inc()
			return nil
		})
		if err != nil {
			return true
		}
		// Caught up: promise the frontier and wait for more.
		wm := watermark
		if f.cfg.IdleWatermark != nil {
			if w := f.cfg.IdleWatermark(); w.After(wm) {
				wm = w
			}
		}
		conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
		if _, err := conn.Write(appendHeartbeat(buf[:0], next, wm)); err != nil {
			return true
		}
		select {
		case <-f.wake:
		case <-hb.C:
		case <-f.closed:
			return true
		case <-connDead:
			return true
		}
		if !hb.Stop() {
			select {
			case <-hb.C:
			default:
			}
		}
		hb.Reset(f.cfg.HeartbeatEvery)
	}
}

func (f *Feed) storeAckedMax(a uint64) {
	for {
		cur := f.acked.Load()
		if a <= cur || f.acked.CompareAndSwap(cur, a) {
			return
		}
	}
}

// jittered spreads d over [d/2, d) so a restarted fleet never redials
// in lockstep — the PeerManager discipline.
func (f *Feed) jittered(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(f.rng.Int63n(int64(half)))
}

func (f *Feed) doubled(d time.Duration) time.Duration {
	if d *= 2; d > f.cfg.MaxBackoff {
		return f.cfg.MaxBackoff
	}
	return d
}

// sleep waits d or until Close; it reports whether the feed should
// keep running.
func (f *Feed) sleep(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-f.closed:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-f.closed:
		return false
	}
}
