package relay

import (
	"sync/atomic"
	"testing"
	"time"

	"rex/internal/core/pipeline"
)

func sinkTestPipeline() *pipeline.Pipeline {
	return pipeline.New(pipeline.Config{
		Window: time.Minute,
		Site:   "sink-test",
	})
}

// TestSinkPanicRecovered: a panicking SnapshotSink must not kill the
// drain goroutine — the snapshot still reaches Snapshots() and Close
// still completes.
func TestSinkPanicRecovered(t *testing.T) {
	panics0 := mSinkPanics.Value()
	var calls atomic.Int64
	rcv := NewReceiver(ReceiverConfig{
		Pipeline:    sinkTestPipeline(),
		ExpectFeeds: []string{"f1"},
		SnapshotSink: func(Snapshot) {
			calls.Add(1)
			panic("sink exploded")
		},
	})
	var got atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range rcv.Snapshots() {
			got.Add(1)
		}
	}()
	closed := make(chan struct{})
	go func() {
		rcv.Close() // emits the TriggerFinal snapshot through the sink
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked behind a panicking sink")
	}
	<-done
	if calls.Load() == 0 {
		t.Fatal("sink never called")
	}
	if got.Load() == 0 {
		t.Error("snapshot not forwarded after sink panic")
	}
	if d := mSinkPanics.Value() - panics0; d != uint64(calls.Load()) {
		t.Errorf("rex_relay_sink_panics_total moved by %d, want %d", d, calls.Load())
	}
}

// TestWedgedSinkCannotDeadlockClose is the shutdown bound: a sink that
// never returns is abandoned after SinkTimeout, Close returns, and
// Snapshots() still closes (only) once the sink does.
func TestWedgedSinkCannotDeadlockClose(t *testing.T) {
	wedged0 := mSinkWedged.Value()
	unblock := make(chan struct{})
	entered := make(chan struct{}, 4)
	rcv := NewReceiver(ReceiverConfig{
		Pipeline:    sinkTestPipeline(),
		ExpectFeeds: []string{"f1"},
		SinkTimeout: 100 * time.Millisecond,
		SnapshotSink: func(Snapshot) {
			entered <- struct{}{}
			<-unblock // wedged until the test releases it
		},
	})
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range rcv.Snapshots() {
		}
	}()

	closed := make(chan struct{})
	go func() {
		rcv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return: wedged sink deadlocked shutdown")
	}
	if d := mSinkWedged.Value() - wedged0; d != 1 {
		t.Errorf("rex_relay_sink_wedged_total moved by %d, want 1", d)
	}
	// Snapshots() must still be open — it may only close after the sink
	// actually returns, so the channel never closes under a send.
	select {
	case <-drained:
		t.Fatal("Snapshots() closed while the sink was still wedged")
	case <-time.After(50 * time.Millisecond):
	}
	<-entered
	close(unblock)
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Snapshots() never closed after the sink returned")
	}
}
