package relay

import (
	"net"
	"sync"
	"testing"
	"time"

	"rex/internal/bgp/fsm/faultconn"
)

// The chaos suite: every fault mode the transport can throw — cuts
// landing mid-frame, slow-loris stalls, one-way partitions, corrupted
// bytes — must collapse to reconnect + ack/resume, and the merged
// output must stay byte-identical to the offline reference. The faults
// ride faultconn wrappers injected at the feed's Dial hook, scripted
// per connection attempt.

// TestChaosMidRecordCut cuts each feed's first connection mid event
// frame (a byte threshold no frame boundary aligns with), forcing a
// partial record at the receiver and a resume on redial.
func TestChaosMidRecordCut(t *testing.T) {
	parts := fleetParts(t, 3, 1200)
	got := runFanIn(t, parts, time.Hour, func(id string, attempt int, c net.Conn) net.Conn {
		if attempt == 0 {
			// 777 lands inside some event frame for every feed: frames
			// are ~40-80 bytes, and the hello is 20.
			return faultconn.New(c, faultconn.Options{CutWriteAfter: 777})
		}
		return c
	})
	if want := reference(parts); got.renders != want {
		t.Fatalf("mid-record cut diverged: %s", firstDiff(got.renders, want))
	}
}

// TestChaosRepeatedCuts keeps cutting: the first three connections of
// every feed die at staggered thresholds, so recovery happens from
// several distinct resume points per feed.
func TestChaosRepeatedCuts(t *testing.T) {
	parts := fleetParts(t, 3, 1200)
	got := runFanIn(t, parts, time.Hour, func(id string, attempt int, c net.Conn) net.Conn {
		if attempt < 3 {
			return faultconn.New(c, faultconn.Options{CutWriteAfter: int64(400 + 351*attempt)})
		}
		return c
	})
	if want := reference(parts); got.renders != want {
		t.Fatalf("repeated cuts diverged: %s", firstDiff(got.renders, want))
	}
}

// TestChaosSlowLoris wedges each feed's first connection after a few
// hundred bytes: writes block forever without erroring. The receiver's
// read deadline must detect the silence, kill the connection, and the
// redial resumes exactly.
func TestChaosSlowLoris(t *testing.T) {
	parts := fleetParts(t, 2, 900)
	got := runFanIn(t, parts, time.Hour, func(id string, attempt int, c net.Conn) net.Conn {
		if attempt == 0 {
			return faultconn.New(c, faultconn.Options{StallWriteAfter: 300})
		}
		return c
	})
	if want := reference(parts); got.renders != want {
		t.Fatalf("slow-loris diverged: %s", firstDiff(got.renders, want))
	}
}

// TestChaosOneWayPartition drops each feed's writes silently after the
// handshake: the feed believes it is streaming, the receiver hears
// nothing. Only protocol-level liveness — the feed's ack deadline, the
// receiver's read deadline — can catch this; TCP reports success.
func TestChaosOneWayPartition(t *testing.T) {
	parts := fleetParts(t, 2, 900)
	got := runFanIn(t, parts, time.Hour, func(id string, attempt int, c net.Conn) net.Conn {
		if attempt == 0 {
			// Past the hello (20 bytes) and a little streaming, then
			// every byte vanishes while reads keep flowing.
			return faultconn.New(c, faultconn.Options{DropWritesAfter: 200})
		}
		return c
	})
	if want := reference(parts); got.renders != want {
		t.Fatalf("one-way partition diverged: %s", firstDiff(got.renders, want))
	}
}

// TestChaosCorruptFrame flips one byte mid-stream: the receiver's
// frame CRC must reject it, drop the connection (the stream cannot be
// re-framed past it), and resume exactly on redial.
func TestChaosCorruptFrame(t *testing.T) {
	parts := fleetParts(t, 2, 900)
	got := runFanIn(t, parts, time.Hour, func(id string, attempt int, c net.Conn) net.Conn {
		if attempt == 0 {
			return faultconn.New(c, faultconn.Options{CorruptWriteAt: 500})
		}
		return c
	})
	if want := reference(parts); got.renders != want {
		t.Fatalf("corrupt frame diverged: %s", firstDiff(got.renders, want))
	}
	if mFramesRejected.Value() == 0 {
		t.Error("corruption never tripped the frame CRC")
	}
}

// TestChaosAckPathCut cuts the receiver→feed direction (acks) while
// events keep flowing: the feed's ack deadline must recycle the
// session rather than stream forever against a dead return path.
func TestChaosAckPathCut(t *testing.T) {
	parts := fleetParts(t, 2, 900)
	got := runFanIn(t, parts, time.Hour, func(id string, attempt int, c net.Conn) net.Conn {
		if attempt == 0 {
			// Allow the handshake ack (17 bytes) through, then stall
			// the read direction: acks stop arriving.
			return faultconn.New(c, faultconn.Options{StallReadAfter: 17})
		}
		return c
	})
	if want := reference(parts); got.renders != want {
		t.Fatalf("ack-path cut diverged: %s", firstDiff(got.renders, want))
	}
}

// TestChaosEverythingAtOnce mixes the modes across feeds and attempts:
// feed 0 gets cut, feed 1 gets a one-way partition, feed 2 slow-loris,
// second attempts corrupt, third attempts clean. One exact answer.
func TestChaosEverythingAtOnce(t *testing.T) {
	parts := fleetParts(t, 3, 1500)
	var mu sync.Mutex
	seen := map[string]int{}
	got := runFanIn(t, parts, time.Hour, func(id string, attempt int, c net.Conn) net.Conn {
		mu.Lock()
		seen[id]++
		mu.Unlock()
		switch {
		case attempt == 0 && id == "feed-00":
			return faultconn.New(c, faultconn.Options{CutWriteAfter: 555})
		case attempt == 0 && id == "feed-01":
			return faultconn.New(c, faultconn.Options{DropWritesAfter: 300})
		case attempt == 0 && id == "feed-02":
			return faultconn.New(c, faultconn.Options{StallWriteAfter: 400})
		case attempt == 1:
			return faultconn.New(c, faultconn.Options{CorruptWriteAt: 600})
		}
		return c
	})
	if want := reference(parts); got.renders != want {
		t.Fatalf("mixed chaos diverged: %s", firstDiff(got.renders, want))
	}
	mu.Lock()
	defer mu.Unlock()
	for id, n := range seen {
		if n < 3 {
			t.Errorf("feed %s only dialed %d times; faults did not bite", id, n)
		}
	}
}
