package sim

import (
	"net/netip"
	"sort"

	"rex/internal/event"
)

// PartitionByPeer splits a stream across n collectors the way a fleet
// deployment would: each route reflector (event peer) reports to
// exactly one collector, assigned round-robin over the sorted distinct
// peer addresses. Relative order within each substream is preserved,
// so per-feed event times stay nondecreasing (the relay protocol
// contract) and every (router, prefix) analysis key lives wholly in
// one feed.
func PartitionByPeer(s event.Stream, n int) []event.Stream {
	if n < 1 {
		n = 1
	}
	assign := map[netip.Addr]int{}
	var peers []netip.Addr
	for _, e := range s {
		if _, ok := assign[e.Peer]; !ok {
			assign[e.Peer] = -1
			peers = append(peers, e.Peer)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].Compare(peers[j]) < 0 })
	for i, p := range peers {
		assign[p] = i % n
	}
	out := make([]event.Stream, n)
	for _, e := range s {
		i := assign[e.Peer]
		out[i] = append(out[i], e)
	}
	return out
}
