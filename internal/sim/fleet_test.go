package sim

import (
	"testing"
	"time"
)

func TestPartitionByPeerDisjointAndOrdered(t *testing.T) {
	is := ISPAnon(ISPAnonConfig{PoPs: 2, RRsPerPoP: 2, Tier1Peers: 3,
		CustomerStubs: 12, InternetStubs: 12, PrefixesPerStub: 2})
	baseline := is.BaselineRoutes()
	t0 := time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)
	s := BenchEvents(is.Site, baseline, 1200, 20*time.Minute, t0, 7)

	const n = 3
	parts := PartitionByPeer(s, n)
	if len(parts) != n {
		t.Fatalf("got %d parts", len(parts))
	}
	total := 0
	owner := map[string]int{}
	for i, p := range parts {
		total += len(p)
		for j, e := range p {
			if j > 0 && e.Time.Before(p[j-1].Time) {
				t.Fatalf("part %d not time-ordered at %d", i, j)
			}
			key := e.Peer.String()
			if prev, ok := owner[key]; ok && prev != i {
				t.Fatalf("peer %s appears in parts %d and %d", key, prev, i)
			}
			owner[key] = i
		}
	}
	if total != len(s) {
		t.Fatalf("partition lost events: %d != %d", total, len(s))
	}
	if len(parts[0]) == 0 || len(parts[1]) == 0 || len(parts[2]) == 0 {
		t.Fatalf("degenerate partition: %d/%d/%d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
}
