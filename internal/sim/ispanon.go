package sim

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// ISP-Anon constants. All addresses are anonymized, as in the paper.
const (
	// ASISPAnon is the vantage Tier-1's AS.
	ASISPAnon = 5000
	// ASCustFlap is the §IV-E continuously flapping customer.
	ASCustFlap = 65010
	// ASNAP fronts the NAP the flapping customer uses as backup.
	ASNAP = 6500
	// ASMed1 and ASMed2 are the §IV-F MED oscillation neighbors.
	ASMed1 = 4001
	ASMed2 = 4002
)

// MEDPrefix is the single prefix of the §IV-F oscillation.
var MEDPrefix = netip.MustParsePrefix("4.5.0.0/16")

// FlapPrefix is the §IV-E customer's prefix.
var FlapPrefix = netip.MustParsePrefix("9.9.0.0/16")

// ISPAnonConfig scales the Tier-1 scenario.
type ISPAnonConfig struct {
	PoPs      int // default 4
	RRsPerPoP int // default 2
	// Tier1Peers is how many other tier-1s the vantage peers with
	// (default 5).
	Tier1Peers int
	// CustomerTransits and CustomerStubs are customers of the vantage
	// (defaults 8 and 30).
	CustomerTransits int
	CustomerStubs    int
	// InternetStubs are the destinations behind the other tier-1s
	// (default: CustomerStubs).
	InternetStubs int
	// StubProviders multi-homes each internet stub to this many tier-1s
	// (default 1). Higher values multiply paths per prefix, as at a real
	// ISP.
	StubProviders int
	// PrefixesPerStub sizes the routing table (default 2).
	PrefixesPerStub int
	Seed            int64
}

func (c ISPAnonConfig) withDefaults() ISPAnonConfig {
	if c.PoPs <= 0 {
		c.PoPs = 4
	}
	if c.RRsPerPoP <= 0 {
		c.RRsPerPoP = 2
	}
	if c.Tier1Peers <= 0 {
		c.Tier1Peers = 5
	}
	if c.CustomerTransits <= 0 {
		c.CustomerTransits = 8
	}
	if c.CustomerStubs <= 0 {
		c.CustomerStubs = 30
	}
	if c.InternetStubs <= 0 {
		c.InternetStubs = c.CustomerStubs
	}
	if c.StubProviders <= 0 {
		c.StubProviders = 1
	}
	if c.StubProviders > c.Tier1Peers {
		c.StubProviders = c.Tier1Peers
	}
	if c.PrefixesPerStub <= 0 {
		c.PrefixesPerStub = 2
	}
	return c
}

// ISPAnonSite is the Tier-1 vantage with the references the §IV-E/F
// scenario generators need.
type ISPAnonSite struct {
	*Site
	Config ISPAnonConfig
	// RRs[pop] lists the route reflectors of each PoP.
	RRs [][]RR
	// FlapAttachment is the flapping customer's direct attachment (PoP
	// 0); NAPNexthops[pop] is the backup nexthop toward the NAP at each
	// PoP.
	FlapAttachments []*Attachment
	NAPNexthops     []netip.Addr
	Tier1s          []uint32
}

// RR identifies one route reflector.
type RR struct {
	Name string
	Addr netip.Addr
}

// ISPAnon builds the Tier-1 scenario: a route-reflector mesh across PoPs,
// peerings with the other tier-1s, a customer cone, the §IV-E flapping
// customer (direct attachment plus NAP backup reachable through every
// tier-1), and the §IV-F MED neighbors.
func ISPAnon(cfg ISPAnonConfig) *ISPAnonSite {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Topology{ASes: make(map[uint32]*AS)}

	t.AddAS(&AS{ASN: ASISPAnon, Role: RoleTier1})
	var tier1s []uint32
	for i := 0; i < cfg.Tier1Peers; i++ {
		asn := uint32(100 + i)
		t.AddAS(&AS{ASN: asn, Role: RoleTier1})
		tier1s = append(tier1s, asn)
	}
	for i, a := range tier1s {
		t.Peer(ASISPAnon, a)
		for _, b := range tier1s[i+1:] {
			t.Peer(a, b)
		}
	}
	alloc := newPrefixAllocator()
	// Vantage customers: transits with stub children, plus direct stubs.
	var vantageTransits []uint32
	for i := 0; i < cfg.CustomerTransits; i++ {
		asn := uint32(2000 + i)
		t.AddAS(&AS{ASN: asn, Role: RoleTransit})
		t.Link(asn, ASISPAnon)
		vantageTransits = append(vantageTransits, asn)
	}
	for i := 0; i < cfg.CustomerStubs; i++ {
		asn := uint32(21000 + i)
		prefixes := make([]netip.Prefix, cfg.PrefixesPerStub)
		for j := range prefixes {
			prefixes[j] = alloc()
		}
		t.AddAS(&AS{ASN: asn, Role: RoleStub, Prefixes: prefixes})
		if i%3 == 0 {
			t.Link(asn, ASISPAnon)
		} else {
			t.Link(asn, vantageTransits[rng.Intn(len(vantageTransits))])
		}
	}
	// The rest of the Internet hangs off the other tier-1s, multi-homed
	// per StubProviders so prefixes have several paths into the vantage.
	for i := 0; i < cfg.InternetStubs; i++ {
		asn := uint32(3000000 + i)
		prefixes := make([]netip.Prefix, cfg.PrefixesPerStub)
		for j := range prefixes {
			prefixes[j] = alloc()
		}
		t.AddAS(&AS{ASN: asn, Role: RoleStub, Prefixes: prefixes})
		for p := 0; p < cfg.StubProviders; p++ {
			t.Link(asn, tier1s[(i+p)%len(tier1s)])
		}
	}
	// §IV-E: the flapping customer, dual-homed: direct to the vantage,
	// and via the NAP AS which is a customer of every other tier-1.
	t.AddAS(&AS{ASN: ASNAP, Role: RoleTransit})
	for _, a := range tier1s {
		t.Link(ASNAP, a)
	}
	t.AddAS(&AS{ASN: ASCustFlap, Role: RoleStub, Prefixes: []netip.Prefix{FlapPrefix}})
	t.Link(ASCustFlap, ASISPAnon)
	t.Link(ASCustFlap, ASNAP)
	// §IV-F: the MED prefix, dual-homed to AS1 and AS2 equivalents.
	t.AddAS(&AS{ASN: ASMed1, Role: RoleTransit})
	t.AddAS(&AS{ASN: ASMed2, Role: RoleTransit})
	t.Peer(ASISPAnon, ASMed1)
	t.Peer(ASISPAnon, ASMed2)
	t.AddAS(&AS{ASN: 65020, Role: RoleStub, Prefixes: []netip.Prefix{MEDPrefix}})
	t.Link(65020, ASMed1)
	t.Link(65020, ASMed2)

	site := &Site{Name: "isp-anon", AS: ASISPAnon, Topo: t}
	is := &ISPAnonSite{Site: site, Config: cfg, Tier1s: tier1s}

	// Route reflectors: core<pop>-a, core<pop>-b, ...
	for pop := 0; pop < cfg.PoPs; pop++ {
		var rrs []RR
		for i := 0; i < cfg.RRsPerPoP; i++ {
			rrs = append(rrs, RR{
				Name: fmt.Sprintf("core%d-%c", pop+1, 'a'+i),
				Addr: netip.AddrFrom4([4]byte{10, byte(pop + 1), 0, byte(i + 1)}),
			})
		}
		is.RRs = append(is.RRs, rrs)
		is.NAPNexthops = append(is.NAPNexthops, netip.AddrFrom4([4]byte{10, byte(pop + 1), 9, 99}))
	}

	// External neighbors are assigned to PoPs round-robin; every RR of
	// the PoP reports the attachment's routes.
	neighbors := make([]uint32, 0, len(tier1s)+len(vantageTransits)+cfg.CustomerStubs)
	neighbors = append(neighbors, tier1s...)
	neighbors = append(neighbors, vantageTransits...)
	for i := 0; i < cfg.CustomerStubs; i++ {
		if i%3 == 0 {
			neighbors = append(neighbors, uint32(21000+i))
		}
	}
	for idx, n := range neighbors {
		pop := idx % cfg.PoPs
		nexthop := netip.AddrFrom4([4]byte{10, byte(pop + 1), 9, byte(idx%200 + 1)})
		for _, rr := range is.RRs[pop] {
			site.Attachments = append(site.Attachments, &Attachment{
				Router: rr.Name, RouterAddr: rr.Addr,
				Nexthop: nexthop, NeighborAS: n,
			})
		}
	}
	// The flapping customer's direct attachment at PoP 1, on every RR
	// there.
	for _, rr := range is.RRs[0] {
		att := &Attachment{
			Router: rr.Name, RouterAddr: rr.Addr,
			Nexthop: netip.MustParseAddr("1.0.0.1"), NeighborAS: ASCustFlap,
		}
		site.Attachments = append(site.Attachments, att)
		is.FlapAttachments = append(is.FlapAttachments, att)
	}
	return is
}
