package sim

import (
	"net/netip"
	"time"

	"rex/internal/bgp"
	"rex/internal/core/tamp"
	"rex/internal/event"
	"rex/internal/rib"
)

// Attachment is one external BGP attachment of the vantage site: an edge
// router (or route reflector reporting it), the BGP nexthop routes arrive
// with, and the neighboring AS.
type Attachment struct {
	// Router names the edge router; RouterAddr is its IBGP peering
	// address — the Peer field of events the collector would emit.
	Router     string
	RouterAddr netip.Addr
	Nexthop    netip.Addr
	NeighborAS uint32
	// Policy, when set, filters and rewrites routes heard on this
	// attachment (community tagging, local-pref, acceptance). Returning
	// false drops the route.
	Policy func(prefix netip.Prefix, path []uint32, attrs *bgp.PathAttrs) bool
}

// Site is a vantage network: the administrative domain whose routers the
// collector peers with.
type Site struct {
	Name        string
	AS          uint32
	Topo        *Topology
	Attachments []*Attachment

	routing *Routing
}

// Routing returns the (lazily built) policy-routing view of the site's
// topology.
func (s *Site) Routing() *Routing {
	if s.routing == nil {
		s.routing = NewRouting(s.Topo)
	}
	return s.routing
}

// SiteRoute is one RIB entry at one of the site's routers.
type SiteRoute struct {
	Attachment *Attachment
	Prefix     netip.Prefix
	Attrs      *bgp.PathAttrs
}

// TAMPEntry converts the route to TAMP's input form.
func (r SiteRoute) TAMPEntry() tamp.RouteEntry {
	return tamp.RouteEntry{
		Router:  r.Attachment.Router,
		Nexthop: r.Attrs.Nexthop,
		ASPath:  r.Attrs.ASPath.ASNs(),
		Prefix:  r.Prefix,
	}
}

// RIBRoute converts the route to the rib package's form.
func (r SiteRoute) RIBRoute(now time.Time) *rib.Route {
	return &rib.Route{
		Prefix:       r.Prefix,
		Peer:         r.Attachment.RouterAddr,
		PeerRouterID: r.Attachment.RouterAddr,
		Attrs:        r.Attrs,
		LearnedAt:    now,
	}
}

// Event builds the announcement/withdrawal event this route's change
// would produce in the collector's augmented stream.
func (r SiteRoute) Event(t time.Time, typ event.Type) event.Event {
	return event.Event{
		Time:   t,
		Type:   typ,
		Peer:   r.Attachment.RouterAddr,
		Prefix: r.Prefix,
		Attrs:  r.Attrs,
	}
}

// BaselineRoutes computes the site's steady-state RIB: for every
// attachment and every originated prefix, the route the neighbor would
// export to the site under Gao–Rexford policies, passed through the
// attachment's local policy.
func (s *Site) BaselineRoutes() []SiteRoute {
	routing := s.Routing()
	prefixes := s.Topo.AllPrefixes()
	var out []SiteRoute
	for _, att := range s.Attachments {
		for _, op := range prefixes {
			route, ok := s.routeVia(routing, att, op)
			if ok {
				out = append(out, route)
			}
		}
	}
	return out
}

// routeVia computes the route for one (attachment, prefix) pair.
func (s *Site) routeVia(routing *Routing, att *Attachment, op OriginatedPrefix) (SiteRoute, bool) {
	if !routing.Exports(att.NeighborAS, s.AS, op.Origin) {
		return SiteRoute{}, false
	}
	path, ok := routing.Path(att.NeighborAS, op.Origin)
	if !ok {
		return SiteRoute{}, false
	}
	attrs := &bgp.PathAttrs{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.Sequence(path...),
		Nexthop: att.Nexthop,
	}
	if att.Policy != nil && !att.Policy(op.Prefix, path, attrs) {
		return SiteRoute{}, false
	}
	return SiteRoute{Attachment: att, Prefix: op.Prefix, Attrs: attrs}, true
}

// TAMPGraph builds the TAMP graph of a route set.
func TAMPGraph(site string, routes []SiteRoute) *tamp.Graph {
	g := tamp.New(site)
	for _, r := range routes {
		g.AddRoute(r.TAMPEntry())
	}
	return g
}
