package sim

import (
	"fmt"
	"strings"

	"rex/internal/policy"
)

// RouterConfigs returns the Berkeley edge routers' configurations as the
// paper's §III-D.1 describes them: 128.32.1.3 assigns LOCAL_PREF 80 to
// ISP routes tagged 11423:65350 (and accepts nothing else — it is the
// rate-limited commodity path), while 128.32.1.200 assigns 70 to ISP
// routes and the 100 default to routes tagged 11423:65300 (Internet2,
// CalREN members). These are the configs the anomaly pipeline correlates
// Stemming components against.
func (b *BerkeleySite) RouterConfigs() []*policy.Config {
	edge3 := `hostname edge-128-32-1-3
router bgp 25
 bgp router-id 128.32.1.3
 neighbor 128.32.0.66 remote-as 11423
 neighbor 128.32.0.66 route-map CALREN-IN in
 neighbor 128.32.0.70 remote-as 11423
 neighbor 128.32.0.70 route-map CALREN-IN in
!
ip community-list standard ISP-ROUTES permit 11423:65350
ip community-list standard I2-ROUTES permit 11423:65300
!
route-map CALREN-IN permit 10
 match community ISP-ROUTES
 set local-preference 80
route-map CALREN-IN deny 20
 match community I2-ROUTES
`
	edge200 := `hostname edge-128-32-1-200
router bgp 25
 bgp router-id 128.32.1.200
 neighbor 128.32.0.90 remote-as 11423
 neighbor 128.32.0.90 route-map CALREN-ALL in
!
ip community-list standard ISP-ROUTES permit 11423:65350
ip community-list standard I2-ROUTES permit 11423:65300
ip prefix-list ANY seq 5 permit 0.0.0.0/0 le 32
!
route-map CALREN-ALL permit 10
 match community ISP-ROUTES
 set local-preference 70
route-map CALREN-ALL permit 20
 match ip address prefix-list ANY
`
	var out []*policy.Config
	for _, text := range []string{edge3, edge200} {
		cfg, err := policy.Parse(strings.NewReader(text))
		if err != nil {
			// The texts are compiled-in; a parse failure is a programming
			// error in this package.
			panic(fmt.Sprintf("sim: built-in config: %v", err))
		}
		out = append(out, cfg)
	}
	return out
}
