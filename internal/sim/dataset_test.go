package sim

import (
	"testing"
	"time"

	"rex/internal/core/tamp"
)

func TestBerkeleyScaleSizing(t *testing.T) {
	for _, target := range []int{10_000, 30_000} {
		b := BerkeleyScale(target)
		routes := b.BaselineRoutes()
		ratio := float64(len(routes)) / float64(target)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("BerkeleyScale(%d) = %d routes (%.2fx)", target, len(routes), ratio)
		}
		// Proportions still hold at scale: the misconfigured split.
		g := TAMPGraph(b.Name, routes)
		total := g.TotalPrefixes()
		w66 := g.Weight(tamp.RouterNode("128.32.1.3"), tamp.NexthopNode(BerkeleyNexthop66))
		if f := float64(w66) / float64(total); f < 0.70 || f > 0.85 {
			t.Errorf("scaled .66 fraction = %.2f", f)
		}
	}
}

func TestISPAnonScaleSizing(t *testing.T) {
	for _, target := range []int{50_000, 150_000} {
		is := ISPAnonScale(target)
		routes := is.BaselineRoutes()
		ratio := float64(len(routes)) / float64(target)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("ISPAnonScale(%d) = %d routes (%.2fx)", target, len(routes), ratio)
		}
		// Multi-path: routes well above unique prefixes, as at an ISP.
		g := TAMPGraph(is.Name, routes)
		multiplicity := float64(len(routes)) / float64(g.TotalPrefixes())
		if multiplicity < 3 {
			t.Errorf("paths per prefix = %.1f, want ISP-like (>3)", multiplicity)
		}
	}
}

func TestBenchEventsExactAndDeterministic(t *testing.T) {
	is := ISPAnon(ISPAnonConfig{})
	baseline := is.BaselineRoutes()
	const n = 5000
	s1 := BenchEvents(is.Site, baseline, n, time.Hour, scT0, 42)
	if len(s1) != n {
		t.Fatalf("events = %d, want %d", len(s1), n)
	}
	// Time-sorted.
	for i := 1; i < len(s1); i++ {
		if s1[i].Time.Before(s1[i-1].Time) {
			t.Fatal("not sorted")
		}
	}
	// Deterministic for a given seed.
	s2 := BenchEvents(is.Site, baseline, n, time.Hour, scT0, 42)
	for i := range s1 {
		if !s1[i].Time.Equal(s2[i].Time) || s1[i].Prefix != s2[i].Prefix || s1[i].Type != s2[i].Type {
			t.Fatalf("event %d differs between runs", i)
		}
	}
	// Different seed differs somewhere.
	s3 := BenchEvents(is.Site, baseline, n, time.Hour, scT0, 43)
	same := true
	for i := range s1 {
		if s1[i].Prefix != s3[i].Prefix || !s1[i].Time.Equal(s3[i].Time) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
	// Degenerate inputs.
	if got := BenchEvents(is.Site, nil, 100, time.Hour, scT0, 1); got != nil {
		t.Error("events from empty baseline")
	}
	if got := BenchEvents(is.Site, baseline, 0, time.Hour, scT0, 1); got != nil {
		t.Error("events for n=0")
	}
}
