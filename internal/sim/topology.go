// Package sim is the Internet routing simulator substituting for the
// paper's proprietary datasets (see DESIGN.md §1): an AS-level topology
// generator with customer/provider/peer relationships, Gao–Rexford policy
// route propagation to build realistic Adj-RIB-Ins at a vantage site, a
// BGP chatter model (path exploration) that expands incidents into
// paper-scale event volumes, and generators for each of the paper's six
// case studies (§IV-A…F) with ground-truth labels.
package sim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
)

// Role classifies an AS in the topology.
type Role uint8

// AS roles.
const (
	RoleTier1 Role = iota + 1
	RoleTransit
	RoleStub
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleTier1:
		return "tier1"
	case RoleTransit:
		return "transit"
	case RoleStub:
		return "stub"
	default:
		return "role(?)"
	}
}

// AS is one autonomous system.
type AS struct {
	ASN  uint32
	Role Role
	// Providers, Customers and Peers are the business relationships that
	// drive Gao–Rexford export policies.
	Providers []uint32
	Customers []uint32
	Peers     []uint32
	// Prefixes are the address blocks the AS originates.
	Prefixes []netip.Prefix
}

// Topology is an AS-level Internet.
type Topology struct {
	ASes map[uint32]*AS
	// Order lists ASNs deterministically (tier-1s first).
	Order []uint32
}

// TopologyConfig sizes GenerateTopology. The zero value yields a small
// but structurally realistic Internet.
type TopologyConfig struct {
	NumTier1   int // default 5
	NumTransit int // default 20
	NumStub    int // default 100
	// PrefixesPerStub is how many prefixes each stub originates
	// (default 2). Transits originate half as many; tier-1s one.
	PrefixesPerStub int
	// Seed drives the deterministic RNG.
	Seed int64
}

func (c TopologyConfig) withDefaults() TopologyConfig {
	if c.NumTier1 <= 0 {
		c.NumTier1 = 5
	}
	if c.NumTransit <= 0 {
		c.NumTransit = 20
	}
	if c.NumStub <= 0 {
		c.NumStub = 100
	}
	if c.PrefixesPerStub <= 0 {
		c.PrefixesPerStub = 2
	}
	return c
}

// GenerateTopology builds a deterministic three-tier Internet: a tier-1
// clique, transits homed to 1–2 tier-1s (with some transit–transit
// peering), and stubs homed to 1–2 transits.
func GenerateTopology(cfg TopologyConfig) *Topology {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Topology{ASes: make(map[uint32]*AS)}

	addAS := func(asn uint32, role Role) *AS {
		a := &AS{ASN: asn, Role: role}
		t.ASes[asn] = a
		t.Order = append(t.Order, asn)
		return a
	}

	var tier1s, transits []uint32
	for i := 0; i < cfg.NumTier1; i++ {
		asn := uint32(100 + i)
		addAS(asn, RoleTier1)
		tier1s = append(tier1s, asn)
	}
	// Tier-1 clique.
	for i, a := range tier1s {
		for _, b := range tier1s[i+1:] {
			t.addPeering(a, b)
		}
	}
	for i := 0; i < cfg.NumTransit; i++ {
		asn := uint32(1000 + i)
		addAS(asn, RoleTransit)
		transits = append(transits, asn)
		// 1–2 tier-1 providers.
		nProv := 1 + rng.Intn(2)
		for _, p := range pickDistinct(rng, tier1s, nProv) {
			t.addCustomerProvider(asn, p)
		}
	}
	// Sparse transit–transit peering.
	for i, a := range transits {
		for _, b := range transits[i+1:] {
			if rng.Float64() < 0.08 {
				t.addPeering(a, b)
			}
		}
	}
	nextPrefix := newPrefixAllocator()
	for i := 0; i < cfg.NumStub; i++ {
		asn := uint32(20000 + i)
		stub := addAS(asn, RoleStub)
		nProv := 1 + rng.Intn(2)
		for _, p := range pickDistinct(rng, transits, nProv) {
			t.addCustomerProvider(asn, p)
		}
		for j := 0; j < cfg.PrefixesPerStub; j++ {
			stub.Prefixes = append(stub.Prefixes, nextPrefix())
		}
	}
	// Transits and tier-1s originate a little address space of their own.
	for _, asn := range transits {
		for j := 0; j < (cfg.PrefixesPerStub+1)/2; j++ {
			t.ASes[asn].Prefixes = append(t.ASes[asn].Prefixes, nextPrefix())
		}
	}
	for _, asn := range tier1s {
		t.ASes[asn].Prefixes = append(t.ASes[asn].Prefixes, nextPrefix())
	}
	return t
}

func (t *Topology) addCustomerProvider(customer, provider uint32) {
	c, p := t.ASes[customer], t.ASes[provider]
	if c == nil || p == nil || containsASN(c.Providers, provider) {
		return
	}
	c.Providers = append(c.Providers, provider)
	p.Customers = append(p.Customers, customer)
}

func (t *Topology) addPeering(a, b uint32) {
	aa, bb := t.ASes[a], t.ASes[b]
	if aa == nil || bb == nil || containsASN(aa.Peers, b) {
		return
	}
	aa.Peers = append(aa.Peers, b)
	bb.Peers = append(bb.Peers, a)
}

// AddAS inserts a custom AS (used by the site builders for vantage and
// neighbor ASes). It panics on duplicate ASN: topologies are built by
// tests and generators, so a duplicate is a programming error.
func (t *Topology) AddAS(a *AS) {
	if _, dup := t.ASes[a.ASN]; dup {
		panic(fmt.Sprintf("sim: duplicate AS%d", a.ASN))
	}
	t.ASes[a.ASN] = a
	t.Order = append(t.Order, a.ASN)
}

// Link declares a relationship between existing ASes.
func (t *Topology) Link(customer, provider uint32) { t.addCustomerProvider(customer, provider) }

// Peer declares a peering between existing ASes.
func (t *Topology) Peer(a, b uint32) { t.addPeering(a, b) }

// AllPrefixes returns every originated prefix with its origin AS,
// deterministically ordered.
func (t *Topology) AllPrefixes() []OriginatedPrefix {
	var out []OriginatedPrefix
	for _, asn := range t.Order {
		for _, p := range t.ASes[asn].Prefixes {
			out = append(out, OriginatedPrefix{Prefix: p, Origin: asn})
		}
	}
	return out
}

// OriginatedPrefix ties a prefix to its origin AS.
type OriginatedPrefix struct {
	Prefix netip.Prefix
	Origin uint32
}

// NumASes returns the AS count.
func (t *Topology) NumASes() int { return len(t.ASes) }

func containsASN(list []uint32, asn uint32) bool {
	for _, a := range list {
		if a == asn {
			return true
		}
	}
	return false
}

// pickDistinct chooses n distinct elements deterministically from the rng.
func pickDistinct(rng *rand.Rand, from []uint32, n int) []uint32 {
	if n >= len(from) {
		out := make([]uint32, len(from))
		copy(out, from)
		return out
	}
	idx := rng.Perm(len(from))[:n]
	sort.Ints(idx)
	out := make([]uint32, n)
	for i, j := range idx {
		out[i] = from[j]
	}
	return out
}

// newPrefixAllocator hands out successive /24s from 20.0.0.0 upward,
// skipping reserved-looking boundaries for readability.
func newPrefixAllocator() func() netip.Prefix {
	var n uint32
	return func() netip.Prefix {
		a := 20 + (n >> 16)
		b := (n >> 8) & 0xFF
		c := n & 0xFF
		n++
		return netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(a), byte(b), byte(c), 0}), 24)
	}
}
