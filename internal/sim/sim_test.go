package sim

import (
	"testing"

	"rex/internal/core/tamp"
)

func TestGenerateTopologyStructure(t *testing.T) {
	topo := GenerateTopology(TopologyConfig{Seed: 1})
	if topo.NumASes() != 5+20+100 {
		t.Fatalf("NumASes = %d", topo.NumASes())
	}
	var tier1s, transits, stubs int
	for _, a := range topo.ASes {
		switch a.Role {
		case RoleTier1:
			tier1s++
			if len(a.Peers) != 4 {
				t.Errorf("tier1 AS%d has %d peers, want clique of 4", a.ASN, len(a.Peers))
			}
			if len(a.Providers) != 0 {
				t.Errorf("tier1 AS%d has providers", a.ASN)
			}
		case RoleTransit:
			transits++
			if len(a.Providers) == 0 {
				t.Errorf("transit AS%d has no providers", a.ASN)
			}
		case RoleStub:
			stubs++
			if len(a.Providers) == 0 || len(a.Customers) != 0 {
				t.Errorf("stub AS%d providers=%d customers=%d", a.ASN, len(a.Providers), len(a.Customers))
			}
			if len(a.Prefixes) != 2 {
				t.Errorf("stub AS%d prefixes=%d", a.ASN, len(a.Prefixes))
			}
		}
	}
	if tier1s != 5 || transits != 20 || stubs != 100 {
		t.Errorf("roles = %d/%d/%d", tier1s, transits, stubs)
	}
	// Determinism.
	again := GenerateTopology(TopologyConfig{Seed: 1})
	if len(again.AllPrefixes()) != len(topo.AllPrefixes()) {
		t.Error("generation not deterministic")
	}
	// Relationships are symmetric.
	for asn, a := range topo.ASes {
		for _, p := range a.Providers {
			if !containsASN(topo.ASes[p].Customers, asn) {
				t.Fatalf("AS%d provider %d asymmetric", asn, p)
			}
		}
		for _, p := range a.Peers {
			if !containsASN(topo.ASes[p].Peers, asn) {
				t.Fatalf("AS%d peer %d asymmetric", asn, p)
			}
		}
	}
}

func TestRoutingValleyFree(t *testing.T) {
	// Hand-built topology:
	//   T1a -peer- T1b  (tier-1s)
	//   Ta under T1a; Tb under T1b (transits)
	//   Sa under Ta; Sb under Tb (stubs)
	topo := &Topology{ASes: make(map[uint32]*AS)}
	for _, asn := range []uint32{1, 2, 11, 12, 101, 102} {
		topo.AddAS(&AS{ASN: asn})
	}
	topo.Peer(1, 2)
	topo.Link(11, 1)
	topo.Link(12, 2)
	topo.Link(101, 11)
	topo.Link(102, 12)

	r := NewRouting(topo)
	// Stub-to-stub crosses the tier-1 peering exactly once.
	path, ok := r.Path(101, 102)
	if !ok {
		t.Fatal("no path 101->102")
	}
	want := []uint32{101, 11, 1, 2, 12, 102}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// Self path.
	if p, ok := r.Path(101, 101); !ok || len(p) != 1 {
		t.Errorf("self path = %v ok=%v", p, ok)
	}
	// Unknown destination.
	if _, ok := r.Path(101, 999); ok {
		t.Error("path to unknown AS")
	}
}

func TestRoutingPrefersCustomerOverPeer(t *testing.T) {
	// Dest reachable from X both via a customer chain and a shorter peer
	// path: Gao–Rexford prefers the customer route despite length.
	topo := &Topology{ASes: make(map[uint32]*AS)}
	for _, asn := range []uint32{10, 20, 30, 99} {
		topo.AddAS(&AS{ASN: asn})
	}
	// 99 is a customer of 30; 30 a customer of 20; 20 a customer of 10.
	topo.Link(99, 30)
	topo.Link(30, 20)
	topo.Link(20, 10)
	// 10 also peers with 99's other provider 40 — make a peer shortcut:
	topo.AddAS(&AS{ASN: 40})
	topo.Peer(10, 40)
	topo.Link(99, 40)
	r := NewRouting(topo)
	path, ok := r.Path(10, 99)
	if !ok {
		t.Fatal("no path")
	}
	// Customer route 10-20-30-99 (3 hops) preferred over peer 10-40-99
	// (2 hops).
	if len(path) != 4 || path[1] != 20 {
		t.Errorf("path = %v, want customer route via 20", path)
	}
}

func TestRoutingExports(t *testing.T) {
	topo := &Topology{ASes: make(map[uint32]*AS)}
	for _, asn := range []uint32{1, 2, 11, 25, 99} {
		topo.AddAS(&AS{ASN: asn})
	}
	topo.Peer(1, 2)
	topo.Link(11, 1)  // 11 customer of 1
	topo.Link(25, 11) // 25 (the site) customer of 11
	topo.Link(99, 2)  // dest stub under 2
	r := NewRouting(topo)
	// 11's route to 99 is via its provider — but 25 is 11's customer, so
	// it is exported.
	if !r.Exports(11, 25, 99) {
		t.Error("provider route not exported to customer")
	}
	// 1's route to 99 is via its peer 2; 11 is 1's customer: exported.
	if !r.Exports(1, 11, 99) {
		t.Error("peer route not exported to customer")
	}
	// 2 would not export its peer-learned routes to peer 1... 99 is 2's
	// customer, so it IS exported to the peer.
	if !r.Exports(2, 1, 99) {
		t.Error("customer route not exported to peer")
	}
	// 1's peer-learned route to 99 must NOT be exported to its peer 2
	// (no transit between peers) — trivially 2 wouldn't ask; test via a
	// third peer.
	topo2 := &Topology{ASes: make(map[uint32]*AS)}
	for _, asn := range []uint32{1, 2, 3, 99} {
		topo2.AddAS(&AS{ASN: asn})
	}
	topo2.Peer(1, 2)
	topo2.Peer(1, 3)
	topo2.Link(99, 2)
	r2 := NewRouting(topo2)
	if r2.Exports(1, 3, 99) {
		t.Error("peer route exported to another peer (valley)")
	}
	if _, ok := r2.Path(3, 99); ok {
		t.Error("AS3 reached 99 through a valley")
	}
}

func TestBerkeleyBaselineProportions(t *testing.T) {
	b := Berkeley(BerkeleyConfig{Misconfigured: true})
	routes := b.BaselineRoutes()
	if len(routes) == 0 {
		t.Fatal("no baseline routes")
	}
	g := TAMPGraph(b.Name, routes)
	total := g.TotalPrefixes()
	// 830 commodity + 60 I2 + 110 members + 8 LosNettos + 17 KDDI + 2
	// backdoor.
	if total != 1027 {
		t.Fatalf("total prefixes = %d", total)
	}
	root := tamp.RootNode("berkeley")
	w66 := g.Weight(tamp.RouterNode("128.32.1.3"), tamp.NexthopNode(BerkeleyNexthop66))
	w70 := g.Weight(tamp.RouterNode("128.32.1.3"), tamp.NexthopNode(BerkeleyNexthop70))
	w90 := g.Weight(tamp.RouterNode("128.32.1.200"), tamp.NexthopNode(BerkeleyNexthop90))
	f66, f70 := float64(w66)/float64(total), float64(w70)/float64(total)
	// §IV-A: ~78% vs ~5%.
	if f66 < 0.72 || f66 > 0.82 {
		t.Errorf(".66 fraction = %.3f, want ~0.78", f66)
	}
	if f70 < 0.02 || f70 > 0.08 {
		t.Errorf(".70 fraction = %.3f, want ~0.05", f70)
	}
	// .90 hears everything — including the backdoor destinations, which
	// are also reachable via the normal CalREN path.
	if w90 != total {
		t.Errorf(".90 weight = %d, want %d", w90, total)
	}
	// Intended split is even.
	even := Berkeley(BerkeleyConfig{})
	ge := TAMPGraph("berkeley", even.BaselineRoutes())
	e66 := ge.Weight(tamp.RouterNode("128.32.1.3"), tamp.NexthopNode(BerkeleyNexthop66))
	e70 := ge.Weight(tamp.RouterNode("128.32.1.3"), tamp.NexthopNode(BerkeleyNexthop70))
	ratio := float64(e66) / float64(e66+e70)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("intended split ratio = %.3f, want ~0.5", ratio)
	}
	_ = root
}

func TestBerkeleyBackdoorVisibility(t *testing.T) {
	b := Berkeley(BerkeleyConfig{Misconfigured: true})
	g := b.LoadBalanceGraph()
	// Default pruning hides the backdoor (Figure 2); hierarchical
	// pruning exposes it (Figure 5).
	def := g.Snapshot(tamp.PruneOptions{})
	if def.HasNode(tamp.RouterNode("128.32.1.222")) {
		t.Error("backdoor visible under default pruning")
	}
	hier := g.Snapshot(tamp.PruneOptions{KeepDepth: 3})
	if !hier.HasNode(tamp.RouterNode("128.32.1.222")) {
		t.Fatal("backdoor hidden under hierarchical pruning")
	}
	e, ok := hier.Edge(tamp.NexthopNode(BerkeleyNexthop157), tamp.ASNode(ASATT))
	if !ok || e.Weight != 2 {
		t.Errorf("backdoor edge = %+v ok=%v", e, ok)
	}
}

func TestBerkeleyMistagSplit(t *testing.T) {
	b := Berkeley(BerkeleyConfig{})
	tagged := b.MistagRoutes()
	if len(tagged) == 0 {
		t.Fatal("no tagged routes")
	}
	g := TAMPGraph("berkeley-2152-65297", tagged)
	total := g.TotalPrefixes()
	if total != 25 {
		t.Fatalf("tagged prefixes = %d, want 25", total)
	}
	ln := g.Weight(tamp.ASNode(ASCalREN), tamp.ASNode(ASLosNettos))
	kd := g.Weight(tamp.ASNode(ASCalREN), tamp.ASNode(ASKDDI))
	if ln != 8 || kd != 17 {
		t.Errorf("Los Nettos/KDDI weights = %d/%d, want 8/17 (32%%/68%%)", ln, kd)
	}
}

func TestBerkeleyPathsLookRight(t *testing.T) {
	b := Berkeley(BerkeleyConfig{})
	for _, r := range b.BaselineRoutes() {
		path := r.Attrs.ASPath.ASNs()
		if len(path) == 0 {
			t.Fatalf("empty path for %v", r.Prefix)
		}
		if r.Attachment.NeighborAS != path[0] {
			t.Fatalf("path %v does not start at neighbor AS%d", path, r.Attachment.NeighborAS)
		}
		for _, asn := range path {
			if asn == ASBerkeley {
				t.Fatalf("site AS in path %v (loop)", path)
			}
		}
	}
}
