package sim

import (
	"time"

	"rex/internal/event"
)

// Dataset builders for the Table I benchmarks: sites whose baseline RIBs
// approximate a requested route count, and deterministic mixed event
// streams of a requested size.

// BerkeleyScale builds a Berkeley-shaped site whose baseline holds
// approximately targetRoutes routes (the paper's 23k/115k/230k rows).
// Proportions (commodity/I2/member split, misconfigured rate limiters)
// match the default scenario.
func BerkeleyScale(targetRoutes int) *BerkeleySite {
	// Empirically routes ≈ 1.81 × prefixes at the default proportions
	// (commodity prefixes appear on two routers, the rest on one).
	prefixes := targetRoutes * 100 / 181
	perAS := prefixes/2000 + 1 // keep the AS graph around 2k stubs
	return Berkeley(BerkeleyConfig{
		CommodityPrefixes: prefixes * 83 / 100,
		I2Prefixes:        prefixes * 6 / 100,
		MemberPrefixes:    prefixes * 11 / 100,
		Misconfigured:     true,
		PrefixesPerAS:     perAS,
	})
}

// ISPAnonScale builds a Tier-1 site whose baseline holds approximately
// targetRoutes routes (the paper's 150k/750k/1500k rows), with the
// paper-like multiplicity of paths per prefix (multi-homed destinations
// heard at several route reflectors).
func ISPAnonScale(targetRoutes int) *ISPAnonSite {
	// Internet prefixes contribute StubProviders × RRsPerPoP routes each;
	// with 3 providers and 2 RRs/PoP that is ~6, plus customer-cone
	// routes. Empirically routes ≈ 6.2 × internet prefixes here.
	prefixes := targetRoutes * 100 / 620
	stubs := 300
	perStub := prefixes/stubs + 1
	return ISPAnon(ISPAnonConfig{
		PoPs: 4, RRsPerPoP: 2, Tier1Peers: 5,
		CustomerTransits: 8, CustomerStubs: 60,
		InternetStubs: stubs, StubProviders: 3,
		PrefixesPerStub: perStub,
	})
}

// BenchEvents builds a deterministic event stream of exactly n events
// spanning `over`: repeated partial session resets (withdraw + explore +
// re-announce, the dominant BGP chatter pattern) rotating across the
// site's neighbors, padded with uncorrelated noise. The result is
// time-sorted.
func BenchEvents(site *Site, baseline []SiteRoute, n int, over time.Duration, start time.Time, seed int64) event.Stream {
	if n <= 0 || len(baseline) == 0 {
		return nil
	}
	// Group baseline routes by neighbor AS for reset cycles.
	byNeighbor := map[uint32][]SiteRoute{}
	var neighbors []uint32
	for _, r := range baseline {
		asn := r.Attachment.NeighborAS
		if _, ok := byNeighbor[asn]; !ok {
			neighbors = append(neighbors, asn)
		}
		byNeighbor[asn] = append(byNeighbor[asn], r)
	}
	out := make(event.Stream, 0, n+64)
	// 10% noise, 90% reset chatter.
	noiseN := n / 10
	out = append(out, NoiseStream(baseline, noiseN, over, start, seed)...)

	step := over / time.Duration(n)
	if step <= 0 {
		step = time.Millisecond
	}
	now := start
	for i := 0; len(out) < n; i++ {
		routes := byNeighbor[neighbors[i%len(neighbors)]]
		for _, r := range routes {
			if len(out) >= n {
				break
			}
			out = append(out, withdraw(r, now))
			now = now.Add(step)
			if len(out) >= n {
				break
			}
			out = append(out, announce(r, now))
			now = now.Add(step)
		}
	}
	out = out[:n]
	out.SortByTime()
	return out
}
