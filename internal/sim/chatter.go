package sim

import (
	"math/rand"
	"net/netip"
	"time"

	"rex/internal/bgp"
	"rex/internal/event"
)

// Scenario is one generated incident: the site, the steady-state RIB
// before the incident, the event stream the collector would capture, and
// ground-truth labels for the detection tests.
type Scenario struct {
	Name     string
	Site     *Site
	Baseline []SiteRoute
	Events   event.Stream
	// MovedPrefixes are the prefixes the incident affects.
	MovedPrefixes []netip.Prefix
	// StemASFrom/StemASTo, when non-zero, give the AS-level problem
	// location Stemming should report.
	StemASFrom, StemASTo uint32
}

// BaselineEntries converts the baseline to TAMP input.
func (s *Scenario) BaselineEntries() []SiteRoute { return s.Baseline }

// announce and withdraw build events from a SiteRoute.
func announce(r SiteRoute, t time.Time) event.Event { return r.Event(t, event.Announce) }
func withdraw(r SiteRoute, t time.Time) event.Event { return r.Event(t, event.Withdraw) }

// PeerLeakScenario generates the paper's §IV-D incident at Berkeley:
// leaked routes from CalREN's peers pull commodity prefixes (the ones
// reached through Level3) onto a long leaked path
// 11423-11422-10927-1909-195-2152-3356. Because the leaked path is not
// heard from QWest, CalREN does not attach the ISP community, so router
// 128.32.1.3 stops announcing those prefixes entirely — the costly
// community-filter interaction. cycles repeats the move-and-recover (the
// paper observed the 30k prefixes move twice).
func PeerLeakScenario(b *BerkeleySite, cycles int, start time.Time) *Scenario {
	if cycles <= 0 {
		cycles = 2
	}
	baseline := b.BaselineRoutes()
	routing := b.Routing()

	// The leaked AS path inserted between CalREN and Level3 (Packet
	// Clearing House, Alpha NAP, SDSC, CENIC in the paper).
	leakCore := []uint32{ASCalREN, ASCalRENDC, 10927, 1909, 195, ASCENIC, ASLevel3}

	// Moved prefixes: commodity destinations whose normal path runs
	// through Level3.
	type movedRoute struct {
		before SiteRoute
		origin uint32
	}
	byAttachment := map[*Attachment][]movedRoute{}
	var moved []netip.Prefix
	seen := map[netip.Prefix]bool{}
	origins := map[netip.Prefix]uint32{}
	for _, op := range b.Topo.AllPrefixes() {
		origins[op.Prefix] = op.Origin
	}
	for _, r := range baseline {
		path := r.Attrs.ASPath.ASNs()
		viaLevel3 := false
		for i, asn := range path {
			if asn == ASQwest && i+1 < len(path) && contains(path[i+1:], ASLevel3) {
				viaLevel3 = true
				break
			}
		}
		if !viaLevel3 {
			continue
		}
		byAttachment[r.Attachment] = append(byAttachment[r.Attachment], movedRoute{before: r, origin: origins[r.Prefix]})
		if !seen[r.Prefix] {
			seen[r.Prefix] = true
			moved = append(moved, r.Prefix)
		}
	}

	sc := &Scenario{
		Name: "peer-leak", Site: b.Site, Baseline: baseline,
		MovedPrefixes: moved,
		StemASFrom:    ASCENIC, StemASTo: ASLevel3,
	}
	now := start
	step := func() time.Time { now = now.Add(50 * time.Millisecond); return now }
	for c := 0; c < cycles; c++ {
		// Leak appears.
		for _, att := range b.Attachments {
			for _, mr := range byAttachment[att] {
				leakPath := append(append([]uint32{}, leakCore...), pathTail(mr.before, mr.origin)...)
				after, ok := b.Site.routeWithPath(routing, att, mr.before.Prefix, leakPath)
				switch {
				case ok:
					// Exploration: a first, even longer transient path.
					transient := append(append([]uint32{}, leakCore[:4]...), leakPath[2:]...)
					if tr, trOK := b.Site.routeWithPath(routing, att, mr.before.Prefix, transient); trOK {
						sc.Events = append(sc.Events, announce(tr, step()))
					}
					sc.Events = append(sc.Events, announce(after, step()))
				default:
					// Policy now rejects the route: the router withdraws
					// (128.32.1.3's community filter).
					sc.Events = append(sc.Events, withdraw(mr.before, step()))
				}
			}
		}
		now = now.Add(30 * time.Second)
		// Leak fixed: everything returns to baseline.
		for _, att := range b.Attachments {
			for _, mr := range byAttachment[att] {
				sc.Events = append(sc.Events, announce(mr.before, step()))
			}
		}
		now = now.Add(2 * time.Minute)
	}
	return sc
}

// routeWithPath applies an attachment's policy to an explicitly given AS
// path (used by incident generators to inject non-baseline paths).
func (s *Site) routeWithPath(routing *Routing, att *Attachment, prefix netip.Prefix, path []uint32) (SiteRoute, bool) {
	attrs := &bgp.PathAttrs{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.Sequence(path...),
		Nexthop: att.Nexthop,
	}
	if att.Policy != nil && !att.Policy(prefix, path, attrs) {
		return SiteRoute{}, false
	}
	return SiteRoute{Attachment: att, Prefix: prefix, Attrs: attrs}, true
}

// pathTail returns the portion of the route's AS path from Level3's
// successor to the origin (the destination-specific tail).
func pathTail(r SiteRoute, origin uint32) []uint32 {
	path := r.Attrs.ASPath.ASNs()
	for i, asn := range path {
		if asn == ASLevel3 {
			return path[i+1:]
		}
	}
	if len(path) > 0 && path[len(path)-1] == origin {
		return []uint32{origin}
	}
	return nil
}

func contains(path []uint32, asn uint32) bool {
	for _, a := range path {
		if a == asn {
			return true
		}
	}
	return false
}

// CustomerFlapScenario generates §IV-E: the customer session at 1.0.0.1
// drops and re-establishes every `period`; each flap fails the prefix
// over to three-hop alternates via the NAP announced independently by
// every PoP's route reflectors (~200 events/flap at the default fleet),
// then recovers.
func CustomerFlapScenario(is *ISPAnonSite, flaps int, period time.Duration, start time.Time) *Scenario {
	if flaps <= 0 {
		flaps = 10
	}
	if period <= 0 {
		period = time.Minute
	}
	baseline := is.BaselineRoutes()
	sc := &Scenario{
		Name: "customer-flap", Site: is.Site, Baseline: baseline,
		MovedPrefixes: []netip.Prefix{FlapPrefix},
		StemASFrom:    ASISPAnon, StemASTo: ASCustFlap,
	}
	directAttrs := &bgp.PathAttrs{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.Sequence(ASCustFlap),
		Nexthop: netip.MustParseAddr("1.0.0.1"),
	}
	now := start
	for f := 0; f < flaps; f++ {
		flapStart := now
		// Session drops: the direct route is withdrawn at PoP 1.
		for _, att := range is.FlapAttachments {
			sc.Events = append(sc.Events, event.Event{
				Time: flapStart, Type: event.Withdraw,
				Peer: att.RouterAddr, Prefix: FlapPrefix, Attrs: directAttrs,
			})
		}
		// Convergence: every RR at every PoP explores alternates via the
		// NAP through each tier-1 (announce sequence = path exploration),
		// spread over ~20 seconds as in the paper.
		stepN := 0
		for round := 0; round < 2; round++ {
			for pop, rrs := range is.RRs {
				for _, rr := range rrs {
					for _, t1 := range is.Tier1s {
						stepN++
						sc.Events = append(sc.Events, event.Event{
							Time: flapStart.Add(time.Duration(stepN) * 90 * time.Millisecond),
							Type: event.Announce,
							Peer: rr.Addr, Prefix: FlapPrefix,
							Attrs: &bgp.PathAttrs{
								Origin:  bgp.OriginIGP,
								ASPath:  bgp.Sequence(t1, ASNAP, ASCustFlap),
								Nexthop: is.NAPNexthops[pop],
							},
						})
					}
				}
			}
		}
		// Session re-establishes: direct route comes back everywhere.
		recover := flapStart.Add(20 * time.Second)
		for _, att := range is.FlapAttachments {
			sc.Events = append(sc.Events, event.Event{
				Time: recover, Type: event.Announce,
				Peer: att.RouterAddr, Prefix: FlapPrefix, Attrs: directAttrs,
			})
		}
		for pop, rrs := range is.RRs {
			if pop == 0 {
				continue
			}
			for _, rr := range rrs {
				sc.Events = append(sc.Events, event.Event{
					Time: recover.Add(time.Second), Type: event.Withdraw,
					Peer: rr.Addr, Prefix: FlapPrefix,
					Attrs: &bgp.PathAttrs{
						Origin:  bgp.OriginIGP,
						ASPath:  bgp.Sequence(is.Tier1s[0], ASNAP, ASCustFlap),
						Nexthop: is.NAPNexthops[pop],
					},
				})
			}
		}
		now = now.Add(period)
	}
	return sc
}

// MEDOscillationScenario generates §IV-F: core2-a/b announce and withdraw
// their AS2 route for 4.5.0.0/16 every fastPeriod (10µs in the paper),
// driving core1-a/b to alternate between the AS1 and AS2 paths every
// slowPeriod (10ms in the paper). The event pattern is the RFC 3345
// oscillation cycle; the decision-process mechanism behind it (MED's lack
// of total ordering) is exercised directly in the rib package's tests.
func MEDOscillationScenario(is *ISPAnonSite, duration, fastPeriod, slowPeriod time.Duration, start time.Time) *Scenario {
	if duration <= 0 {
		duration = time.Second
	}
	if fastPeriod <= 0 {
		fastPeriod = 10 * time.Microsecond
	}
	if slowPeriod <= 0 {
		slowPeriod = 10 * time.Millisecond
	}
	baseline := is.BaselineRoutes()
	sc := &Scenario{
		Name: "med-oscillation", Site: is.Site, Baseline: baseline,
		MovedPrefixes: []netip.Prefix{MEDPrefix},
		StemASFrom:    ASISPAnon, StemASTo: ASMed2,
	}
	nhAS2 := netip.MustParseAddr("10.3.4.5")
	nhAS1 := netip.MustParseAddr("10.6.0.1")
	as2Attrs := func(med uint32) *bgp.PathAttrs {
		return &bgp.PathAttrs{
			Origin: bgp.OriginIGP, ASPath: bgp.Sequence(ASMed2, 65020),
			Nexthop: nhAS2, MED: med, HasMED: true,
		}
	}
	as1Attrs := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, ASPath: bgp.Sequence(ASMed1, 65020), Nexthop: nhAS1,
	}
	core1 := is.RRs[0]
	core2 := is.RRs[1%len(is.RRs)]

	// Fast flap at core2-a/b.
	for tOff, i := time.Duration(0), 0; tOff < duration; tOff, i = tOff+fastPeriod, i+1 {
		for j, rr := range core2 {
			typ := event.Announce
			if (i+j)%2 == 1 {
				typ = event.Withdraw
			}
			sc.Events = append(sc.Events, event.Event{
				Time: start.Add(tOff), Type: typ,
				Peer: rr.Addr, Prefix: MEDPrefix, Attrs: as2Attrs(uint32(10 + j)),
			})
		}
	}
	// Slow alternation at core1-a/b between the AS1 and AS2 paths.
	for tOff, i := time.Duration(0), 0; tOff < duration; tOff, i = tOff+slowPeriod, i+1 {
		for _, rr := range core1 {
			attrs := as1Attrs
			if i%2 == 1 {
				attrs = as2Attrs(5)
			}
			sc.Events = append(sc.Events, event.Event{
				Time: start.Add(tOff), Type: event.Announce,
				Peer: rr.Addr, Prefix: MEDPrefix, Attrs: attrs,
			})
		}
	}
	sc.Events.SortByTime()
	return sc
}

// SessionResetScenario withdraws and re-announces every route of the
// given neighbor AS (a full peering reset): the spike pattern of the
// paper's Figure 8 and the short-timescale anomaly class of §III-B.
func SessionResetScenario(site *Site, baseline []SiteRoute, neighborAS uint32, downFor time.Duration, start time.Time) *Scenario {
	sc := &Scenario{Name: "session-reset", Site: site, Baseline: baseline}
	seen := map[netip.Prefix]bool{}
	now := start
	for _, r := range baseline {
		if r.Attachment.NeighborAS != neighborAS {
			continue
		}
		sc.Events = append(sc.Events, withdraw(r, now))
		now = now.Add(2 * time.Millisecond)
		if !seen[r.Prefix] {
			seen[r.Prefix] = true
			sc.MovedPrefixes = append(sc.MovedPrefixes, r.Prefix)
		}
	}
	reup := start.Add(downFor)
	for _, r := range baseline {
		if r.Attachment.NeighborAS != neighborAS {
			continue
		}
		sc.Events = append(sc.Events, announce(r, reup))
		reup = reup.Add(2 * time.Millisecond)
	}
	sc.StemASFrom = 0
	sc.StemASTo = neighborAS
	return sc
}

// NoiseStream spreads uncorrelated single-prefix churn (the "grass" of
// Figure 8) over the given duration: random baseline routes get a
// withdraw/re-announce pair with a slightly perturbed path.
func NoiseStream(baseline []SiteRoute, n int, over time.Duration, start time.Time, seed int64) event.Stream {
	if len(baseline) == 0 || n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make(event.Stream, 0, n)
	for i := 0; i < n; i += 2 {
		r := baseline[rng.Intn(len(baseline))]
		at := start.Add(time.Duration(rng.Int63n(int64(over))))
		out = append(out, withdraw(r, at))
		if i+1 < n {
			out = append(out, announce(r, at.Add(time.Duration(rng.Intn(2000)+500)*time.Millisecond)))
		}
	}
	out.SortByTime()
	return out
}

// HijackScenario generates the introduction's route-hijacking anomaly: an
// attacker AS adjacent to CalREN announces `victims` prefixes it does not
// originate, with a shorter path that wins the decision process. The
// prefixes black-hole until the hijack is withdrawn. Ground truth: MOAS
// conflicts between the true origins and ASHijacker on every victim
// prefix.
func HijackScenario(b *BerkeleySite, victims int, start time.Time) *Scenario {
	if victims <= 0 {
		victims = 20
	}
	baseline := b.BaselineRoutes()
	routing := b.Routing()
	sc := &Scenario{
		Name: "hijack", Site: b.Site, Baseline: baseline,
		StemASFrom: ASCalREN, StemASTo: ASHijacker,
	}
	// Victims: commodity prefixes currently reached over long paths.
	seen := map[netip.Prefix]bool{}
	var targets []SiteRoute
	for _, r := range baseline {
		if len(targets) >= victims {
			break
		}
		if r.Attrs.ASPath.Length() >= 3 && !seen[r.Prefix] {
			seen[r.Prefix] = true
			targets = append(targets, r)
		}
	}
	now := start
	for _, att := range b.Attachments {
		for _, victim := range targets {
			hijacked, ok := b.Site.routeWithPath(routing, att, victim.Prefix,
				[]uint32{ASCalREN, ASHijacker})
			if !ok {
				continue
			}
			now = now.Add(20 * time.Millisecond)
			sc.Events = append(sc.Events, announce(hijacked, now))
			sc.MovedPrefixes = append(sc.MovedPrefixes, victim.Prefix)
		}
	}
	// The hijack is caught and withdrawn; originals return.
	now = now.Add(10 * time.Minute)
	for _, att := range b.Attachments {
		for _, victim := range targets {
			orig, ok := b.Site.routeVia(routing, att, OriginatedPrefix{
				Prefix: victim.Prefix, Origin: victim.Attrs.ASPath.OriginAS(),
			})
			if !ok {
				continue
			}
			now = now.Add(20 * time.Millisecond)
			sc.Events = append(sc.Events, announce(orig, now))
		}
	}
	return sc
}
