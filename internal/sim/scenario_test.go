package sim

import (
	"testing"
	"time"

	"rex/internal/core/stemming"
	"rex/internal/core/tamp"
	"rex/internal/event"
	"rex/internal/policy"
)

var scT0 = time.Date(2003, 12, 1, 0, 0, 0, 0, time.UTC)

func TestPeerLeakScenario(t *testing.T) {
	b := Berkeley(BerkeleyConfig{Misconfigured: true})
	sc := PeerLeakScenario(b, 2, scT0)
	if len(sc.MovedPrefixes) == 0 {
		t.Fatal("no moved prefixes")
	}
	if len(sc.Events) == 0 {
		t.Fatal("no events")
	}
	// Router 128.32.1.3 must WITHDRAW the moved prefixes (the community
	// filter interaction), while 128.32.1.200 re-announces them on the
	// leaked path.
	var withdrawsFrom3, announcesLeaked int
	for _, e := range sc.Events {
		if e.Type == event.Withdraw && e.Peer == BerkeleyRouter3 {
			withdrawsFrom3++
		}
		if e.Type == event.Announce && e.Peer == BerkeleyRouter200 && e.Attrs.ASPath.Contains(1909) {
			announcesLeaked++
		}
	}
	if withdrawsFrom3 == 0 {
		t.Error("no withdrawals from 128.32.1.3: community interaction missing")
	}
	if announcesLeaked == 0 {
		t.Error("no leaked-path announcements from 128.32.1.200")
	}
	// The leaked routes must carry no ISP community (CalREN only tags
	// QWest-heard routes) — that is what silences 128.32.1.3.
	for _, e := range sc.Events {
		if e.Type == event.Announce && e.Attrs.ASPath.Contains(1909) {
			if e.Attrs.HasCommunity(CommISPRoutes) {
				t.Fatal("leaked route carries the ISP community")
			}
		}
	}
	// Stemming localizes the leak at the deep end of the shared leaked
	// path.
	comp, ok := stemming.Top(sc.Events, stemming.Config{})
	if !ok {
		t.Fatal("stemming found nothing")
	}
	if comp.Stem.From.Kind != stemming.KindAS {
		t.Fatalf("stem = %v", comp.Stem)
	}
	// The stem must sit on the leaked path, not the baseline.
	leaked := map[uint32]bool{ASCalRENDC: true, 10927: true, 1909: true, 195: true, ASCENIC: true, ASLevel3: true}
	if !leaked[comp.Stem.From.AS] && !leaked[comp.Stem.To.AS] {
		t.Errorf("stem %v not on the leaked path", comp.Stem)
	}
}

func TestPeerLeakAnimationShowsMigration(t *testing.T) {
	b := Berkeley(BerkeleyConfig{Misconfigured: true})
	sc := PeerLeakScenario(b, 1, scT0)
	var base []tamp.RouteEntry
	for _, r := range sc.Baseline {
		base = append(base, r.TAMPEntry())
	}
	anim := tamp.Animate(b.Name, base, sc.Events, tamp.AnimationConfig{})
	// The CalREN->QWest edge must lose prefixes at some frame (blue) and
	// the leaked path edge must gain (green), as in Figure 7(b).
	qwestEdge := tamp.EdgeRef{From: tamp.ASNode(ASCalREN), To: tamp.ASNode(ASQwest)}
	leakEdge := tamp.EdgeRef{From: tamp.ASNode(ASCalRENDC), To: tamp.ASNode(10927)}
	var sawLoss, sawGain bool
	for _, f := range anim.Frames {
		for _, ch := range f.Changes {
			if ch.Edge == qwestEdge && (ch.Color == tamp.ColorBlue || ch.Downs > 0) {
				sawLoss = true
			}
			if ch.Edge == leakEdge && (ch.Color == tamp.ColorGreen || ch.Ups > 0) {
				sawGain = true
			}
		}
	}
	if !sawLoss {
		t.Error("CalREN->QWest never lost prefixes in the animation")
	}
	if !sawGain {
		t.Error("leaked path never gained prefixes in the animation")
	}
	// Series on the QWest edge dips and recovers.
	series := anim.EdgeSeries(qwestEdge)
	min, max := series[0], series[0]
	for _, v := range series {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min >= series[0] {
		t.Error("QWest edge series never dipped")
	}
	if series[len(series)-1] != series[0] {
		t.Errorf("QWest edge did not recover: start %d end %d", series[0], series[len(series)-1])
	}
}

func TestCustomerFlapScenario(t *testing.T) {
	is := ISPAnon(ISPAnonConfig{})
	flaps := 8
	sc := CustomerFlapScenario(is, flaps, time.Minute, scT0)
	perFlap := float64(len(sc.Events)) / float64(flaps)
	// The paper reports ~200 events per flap on the full 67-RR mesh; at
	// this fleet (4 PoPs x 2 RRs, 5 tier-1s) the same convergence shape
	// yields on the order of 100.
	if perFlap < 50 || perFlap > 300 {
		t.Errorf("events per flap = %.0f", perFlap)
	}
	// Every event concerns the customer prefix.
	for _, e := range sc.Events {
		if e.Prefix != FlapPrefix {
			t.Fatalf("unexpected prefix %v", e.Prefix)
		}
	}
	// Mixed into background noise over the same period, the flap is the
	// strongest long-window correlation (§IV-E: "the event rate is too
	// low for most tools... Stemming had no trouble").
	noise := NoiseStream(sc.Baseline, 3000, time.Duration(flaps)*time.Minute, scT0, 7)
	mixed := append(append(event.Stream{}, noise...), sc.Events...)
	mixed.SortByTime()
	comp, ok := stemming.Top(mixed, stemming.Config{})
	if !ok {
		t.Fatal("stemming found nothing")
	}
	if len(comp.Prefixes) != 1 || comp.Prefixes[0] != FlapPrefix {
		t.Errorf("top component prefixes = %v, want [%v]", comp.Prefixes, FlapPrefix)
	}
}

func TestMEDOscillationScenario(t *testing.T) {
	is := ISPAnon(ISPAnonConfig{})
	sc := MEDOscillationScenario(is, 50*time.Millisecond, 100*time.Microsecond, 10*time.Millisecond, scT0)
	if len(sc.Events) < 500 {
		t.Fatalf("events = %d", len(sc.Events))
	}
	// All on the MED prefix; MEDs present on AS2 routes.
	var withMED int
	for _, e := range sc.Events {
		if e.Prefix != MEDPrefix {
			t.Fatalf("unexpected prefix %v", e.Prefix)
		}
		if e.Attrs != nil && e.Attrs.HasMED {
			withMED++
		}
	}
	if withMED == 0 {
		t.Error("no MEDs in oscillation events")
	}
	// §IV-F: the oscillation dominates even a short window.
	comp, ok := stemming.Top(sc.Events, stemming.Config{})
	if !ok {
		t.Fatal("stemming found nothing")
	}
	if len(comp.Prefixes) != 1 || comp.Prefixes[0] != MEDPrefix {
		t.Errorf("component prefixes = %v", comp.Prefixes)
	}
	// The animation shows yellow (too fast to animate) on the fast edge,
	// as in Figure 3.
	var base []tamp.RouteEntry
	for _, r := range sc.Baseline {
		base = append(base, r.TAMPEntry())
	}
	anim := tamp.Animate(is.Name, base, sc.Events, tamp.AnimationConfig{})
	sawYellow := false
	for _, f := range anim.Frames {
		for _, ch := range f.Changes {
			if ch.Color == tamp.ColorYellow {
				sawYellow = true
			}
		}
	}
	if !sawYellow {
		t.Error("MED oscillation never rendered yellow")
	}
}

func TestSessionResetScenario(t *testing.T) {
	is := ISPAnon(ISPAnonConfig{})
	baseline := is.BaselineRoutes()
	neighbor := is.Tier1s[0]
	sc := SessionResetScenario(is.Site, baseline, neighbor, 30*time.Second, scT0)
	if len(sc.Events) == 0 || len(sc.Events)%2 != 0 {
		t.Fatalf("events = %d", len(sc.Events))
	}
	// Withdraw+announce per route.
	var w, a int
	for _, e := range sc.Events {
		switch e.Type {
		case event.Withdraw:
			w++
		case event.Announce:
			a++
		}
	}
	if w != a {
		t.Errorf("withdraws %d != announces %d", w, a)
	}
	comp, ok := stemming.Top(sc.Events, stemming.Config{})
	if !ok {
		t.Fatal("stemming found nothing")
	}
	// The reset neighbor appears in the strongest sub-sequence.
	found := false
	for _, tok := range comp.Subsequence {
		if tok.Kind == stemming.KindAS && tok.AS == neighbor {
			found = true
		}
	}
	if !found {
		t.Errorf("neighbor AS%d not in subsequence %v", neighbor, comp.Subsequence)
	}
}

func TestNoiseStream(t *testing.T) {
	is := ISPAnon(ISPAnonConfig{})
	baseline := is.BaselineRoutes()
	noise := NoiseStream(baseline, 1000, time.Hour, scT0, 3)
	if len(noise) != 1000 {
		t.Fatalf("noise events = %d", len(noise))
	}
	first, last, _ := noise.TimeRange()
	if last.Sub(first) < 30*time.Minute {
		t.Errorf("noise span = %v", last.Sub(first))
	}
	// Sorted.
	for i := 1; i < len(noise); i++ {
		if noise[i].Time.Before(noise[i-1].Time) {
			t.Fatal("noise not sorted")
		}
	}
	if NoiseStream(nil, 10, time.Hour, scT0, 1) != nil {
		t.Error("noise from empty baseline")
	}
}

func TestISPAnonStructure(t *testing.T) {
	is := ISPAnon(ISPAnonConfig{})
	if len(is.RRs) != 4 || len(is.RRs[0]) != 2 {
		t.Fatalf("RR mesh = %v", is.RRs)
	}
	if is.RRs[0][0].Name != "core1-a" || is.RRs[1][1].Name != "core2-b" {
		t.Errorf("RR names = %v", is.RRs)
	}
	routes := is.BaselineRoutes()
	if len(routes) == 0 {
		t.Fatal("no baseline routes")
	}
	// Routes outnumber prefixes (multiple paths per prefix), as at any
	// multi-homed ISP.
	g := TAMPGraph(is.Name, routes)
	if len(routes) <= g.TotalPrefixes() {
		t.Errorf("routes %d <= prefixes %d", len(routes), g.TotalPrefixes())
	}
}

func TestHijackScenario(t *testing.T) {
	b := Berkeley(BerkeleyConfig{})
	sc := HijackScenario(b, 15, scT0)
	if len(sc.MovedPrefixes) == 0 || len(sc.Events) == 0 {
		t.Fatalf("events=%d moved=%d", len(sc.Events), len(sc.MovedPrefixes))
	}
	// Every hijack announcement originates at the attacker with a short
	// path.
	var hijacks int
	for _, e := range sc.Events {
		if e.Attrs.ASPath.OriginAS() == ASHijacker {
			hijacks++
			if e.Attrs.ASPath.Length() != 2 {
				t.Fatalf("hijack path %v", e.Attrs.ASPath)
			}
		}
	}
	if hijacks == 0 {
		t.Fatal("no hijack announcements")
	}
	// MOAS detection flags every victim prefix with both origins.
	conflicts := event.OriginConflicts(sc.Events)
	if len(conflicts) != 15 {
		t.Fatalf("conflicts = %d, want 15", len(conflicts))
	}
	for _, c := range conflicts {
		foundAttacker := false
		for _, o := range c.Origins {
			if o == ASHijacker {
				foundAttacker = true
			}
		}
		if !foundAttacker {
			t.Errorf("conflict %v missing attacker origin: %v", c.Prefix, c.Origins)
		}
	}
	// Stemming's strongest component captures the incident: its prefix
	// set covers the victims (the hijacker itself is pinned by the MOAS
	// check above — the component aggregates hijack + restore events).
	comp, ok := stemming.Top(sc.Events, stemming.Config{})
	if !ok {
		t.Fatal("no component")
	}
	victimSet := map[string]bool{}
	for _, p := range comp.Prefixes {
		victimSet[p.String()] = true
	}
	for _, p := range sc.MovedPrefixes {
		if !victimSet[p.String()] {
			t.Errorf("victim %v missing from top component", p)
		}
	}
}

func TestLeakPolicyCorrelationEndToEnd(t *testing.T) {
	// The paper's §III-D.1 loop: Stemming picks the leak component out of
	// the events; correlating its community tags with the router configs
	// pinpoints the LOCAL_PREF policies that explain the behaviour.
	b := Berkeley(BerkeleyConfig{Misconfigured: true})
	sc := PeerLeakScenario(b, 1, scT0)
	comps := stemming.Analyze(sc.Events, stemming.Config{MaxComponents: 4})
	if len(comps) == 0 {
		t.Fatal("no components")
	}
	configs := b.RouterConfigs()
	var all []policy.Finding
	for i := range comps {
		all = append(all, policy.Correlate(&comps[i], sc.Events, configs)...)
	}
	if len(all) == 0 {
		t.Fatal("no policy findings")
	}
	// The ISP community policy (LP 80 on edge-128-32-1-3 and LP 70 on
	// edge-128-32-1-200) must surface: the withdrawn routes carried
	// 11423:65350.
	var saw80, saw70 bool
	for _, f := range all {
		if f.Policy.Community == CommISPRoutes && f.Policy.LocalPref != nil {
			switch *f.Policy.LocalPref {
			case 80:
				saw80 = true
			case 70:
				saw70 = true
			}
		}
	}
	if !saw80 || !saw70 {
		t.Errorf("LP80/LP70 policies missing from findings: %v", all)
	}
}
