package sim

import (
	"net/netip"

	"rex/internal/bgp"
	"rex/internal/core/tamp"
)

// AS numbers appearing in the paper's Berkeley case studies.
const (
	ASBerkeley  = 25
	ASCalREN    = 11423
	ASCalRENDC  = 11422
	ASQwest     = 209
	ASAbilene   = 11537
	ASATT       = 7018
	ASLosNettos = 226
	ASKDDI      = 2516
	ASLevel3    = 3356
	ASCENIC     = 2152
	// ASHijacker is the origin used by the HijackScenario attacker.
	ASHijacker = 666
)

// Berkeley router and nexthop addresses from the paper.
var (
	BerkeleyRouter3    = netip.MustParseAddr("128.32.1.3")
	BerkeleyRouter200  = netip.MustParseAddr("128.32.1.200")
	BerkeleyRouter222  = netip.MustParseAddr("128.32.1.222")
	BerkeleyNexthop66  = netip.MustParseAddr("128.32.0.66")
	BerkeleyNexthop70  = netip.MustParseAddr("128.32.0.70")
	BerkeleyNexthop90  = netip.MustParseAddr("128.32.0.90")
	BerkeleyNexthop157 = netip.MustParseAddr("169.229.0.157")
)

// Communities used in the Berkeley studies.
var (
	CommISPRoutes = bgp.MakeCommunity(ASCalREN, 65350) // commodity Internet
	CommI2Routes  = bgp.MakeCommunity(ASCalREN, 65300) // Internet2 / CalREN members
	CommLosNettos = bgp.MakeCommunity(ASCENIC, 65297)  // §IV-C mis-tagged community
)

// BerkeleyConfig scales the Berkeley scenario. The zero value gives the
// paper's proportions at ~1000 prefixes.
type BerkeleyConfig struct {
	// CommodityPrefixes is the number of commodity-Internet prefixes
	// reached via CalREN→QWest (default 830; ~83% of the total, matching
	// Figure 2's "80% of that are from the commodity Internet").
	CommodityPrefixes int
	// I2Prefixes is the number of Internet2 prefixes via Abilene
	// (default 60, ~6%).
	I2Prefixes int
	// MemberPrefixes is the number of CalREN member prefixes
	// (default 110, ~11%).
	MemberPrefixes int
	// LosNettosPrefixes and KDDIPrefixes size the §IV-C mis-tag study
	// (defaults 8 and 17: 32% / 68% of the tagged routes).
	LosNettosPrefixes int
	KDDIPrefixes      int
	// Misconfigured selects the §IV-A state: the commodity split carries
	// ~94% of commodity prefixes on nexthop .66 instead of 50/50.
	Misconfigured bool
	// PrefixesPerAS packs several prefixes into each generated stub AS
	// (default 1). Large benchmark tables use this to scale the prefix
	// count without exploding the AS graph.
	PrefixesPerAS int
	Seed          int64
}

func (c BerkeleyConfig) withDefaults() BerkeleyConfig {
	if c.CommodityPrefixes <= 0 {
		c.CommodityPrefixes = 830
	}
	if c.I2Prefixes <= 0 {
		c.I2Prefixes = 60
	}
	if c.MemberPrefixes <= 0 {
		c.MemberPrefixes = 110
	}
	if c.LosNettosPrefixes <= 0 {
		c.LosNettosPrefixes = 8
	}
	if c.KDDIPrefixes <= 0 {
		c.KDDIPrefixes = 17
	}
	if c.PrefixesPerAS <= 0 {
		c.PrefixesPerAS = 1
	}
	return c
}

// BerkeleySite is the Berkeley vantage with references the case-study
// generators need.
type BerkeleySite struct {
	*Site
	Config BerkeleyConfig
	// BackdoorPrefixes are the two prefixes of the §IV-B backdoor.
	BackdoorPrefixes []netip.Prefix
}

// Berkeley builds the Berkeley campus scenario: CalREN upstream, QWest
// commodity transit fanning into the tier-1 mesh, Abilene for Internet2,
// the two rate-limiter nexthops with a (configurably misconfigured)
// commodity split, a two-prefix AT&T backdoor, and the mis-tagged
// Los Nettos/KDDI community.
func Berkeley(cfg BerkeleyConfig) *BerkeleySite {
	cfg = cfg.withDefaults()
	t := &Topology{ASes: make(map[uint32]*AS)}

	tier1s := []uint32{701, 1239, ASATT, ASLevel3, 1299}
	for _, asn := range tier1s {
		t.AddAS(&AS{ASN: asn, Role: RoleTier1})
	}
	for i, a := range tier1s {
		for _, b := range tier1s[i+1:] {
			t.Peer(a, b)
		}
	}
	t.AddAS(&AS{ASN: ASQwest, Role: RoleTransit})
	for _, asn := range tier1s {
		t.Peer(ASQwest, asn)
	}
	t.AddAS(&AS{ASN: ASCalRENDC, Role: RoleTransit})
	t.Link(ASCalRENDC, ASQwest) // 11422 customer of QWest
	t.AddAS(&AS{ASN: ASCalREN, Role: RoleTransit})
	t.Link(ASCalREN, ASQwest)    // 11423 customer of QWest
	t.Link(ASCalREN, ASCalRENDC) // and of 11422 (consolidation era)
	t.AddAS(&AS{ASN: ASAbilene, Role: RoleTransit})
	t.Peer(ASCalREN, ASAbilene)
	t.AddAS(&AS{ASN: ASLosNettos, Role: RoleTransit})
	t.Peer(ASCalREN, ASLosNettos)
	t.AddAS(&AS{ASN: ASKDDI, Role: RoleTransit})
	t.Peer(ASCalREN, ASKDDI)
	t.AddAS(&AS{ASN: ASBerkeley, Role: RoleStub})
	t.Link(ASBerkeley, ASCalREN)

	alloc := newPrefixAllocator()
	// addStubs creates stub ASes carrying `prefixes` total originations
	// (PrefixesPerAS per stub), each homed via pickParent(stubIndex).
	addStubs := func(baseASN uint32, prefixes int, pickParent func(i int) uint32) {
		for i := 0; prefixes > 0; i++ {
			n := cfg.PrefixesPerAS
			if n > prefixes {
				n = prefixes
			}
			prefixes -= n
			ps := make([]netip.Prefix, n)
			for j := range ps {
				ps[j] = alloc()
			}
			asn := baseASN + uint32(i)
			t.AddAS(&AS{ASN: asn, Role: RoleStub, Prefixes: ps})
			t.Link(asn, pickParent(i))
		}
	}
	// Commodity stubs hang off the tier-1s (and QWest) round-robin.
	commodityParents := append([]uint32{ASQwest}, tier1s...)
	addStubs(30000, cfg.CommodityPrefixes, func(i int) uint32 { return commodityParents[i%len(commodityParents)] })
	addStubs(1000000, cfg.I2Prefixes, func(int) uint32 { return ASAbilene })
	addStubs(2000000, cfg.MemberPrefixes, func(int) uint32 { return ASCalREN })
	for i := 0; i < cfg.LosNettosPrefixes; i++ {
		asn := uint32(60000 + i)
		t.AddAS(&AS{ASN: asn, Role: RoleStub, Prefixes: []netip.Prefix{alloc()}})
		t.Link(asn, ASLosNettos)
	}
	kddi := t.ASes[ASKDDI]
	for i := 0; i < cfg.KDDIPrefixes; i++ {
		kddi.Prefixes = append(kddi.Prefixes, alloc())
	}
	// The backdoor destination: a two-prefix stub behind AT&T.
	backdoor := []netip.Prefix{alloc(), alloc()}
	t.AddAS(&AS{ASN: 65100, Role: RoleStub, Prefixes: backdoor})
	t.Link(65100, ASATT)

	site := &Site{Name: "berkeley", AS: ASBerkeley, Topo: t}
	bs := &BerkeleySite{Site: site, Config: cfg, BackdoorPrefixes: backdoor}

	isCommodity := func(path []uint32) bool {
		for _, asn := range path {
			if asn == ASQwest {
				return true
			}
		}
		return false
	}
	// The commodity split across the two rate limiters. Intended: half
	// the space each. Misconfigured (§IV-A): ~15/16 of it on .66.
	splitTo66 := func(p netip.Prefix) bool {
		c := p.Addr().As4()[2]
		if cfg.Misconfigured {
			return c < 240
		}
		return c < 128
	}

	// Router 128.32.1.3: commodity only, via the two rate limiters,
	// LOCAL_PREF 80 on ISP routes (paper §III-D.1).
	site.Attachments = append(site.Attachments,
		&Attachment{
			Router: "128.32.1.3", RouterAddr: BerkeleyRouter3,
			Nexthop: BerkeleyNexthop66, NeighborAS: ASCalREN,
			Policy: func(prefix netip.Prefix, path []uint32, attrs *bgp.PathAttrs) bool {
				if !isCommodity(path) || !splitTo66(prefix) {
					return false
				}
				attrs.AddCommunity(CommISPRoutes)
				attrs.LocalPref, attrs.HasLocalPref = 80, true
				return true
			},
		},
		&Attachment{
			Router: "128.32.1.3", RouterAddr: BerkeleyRouter3,
			Nexthop: BerkeleyNexthop70, NeighborAS: ASCalREN,
			Policy: func(prefix netip.Prefix, path []uint32, attrs *bgp.PathAttrs) bool {
				if !isCommodity(path) || splitTo66(prefix) {
					return false
				}
				attrs.AddCommunity(CommISPRoutes)
				attrs.LocalPref, attrs.HasLocalPref = 80, true
				return true
			},
		},
		// Router 128.32.1.200: everything, not rate-limited. ISP routes
		// at LOCAL_PREF 70 (backup), others at the 100 default with the
		// I2/member community. CENIC's 2152:65297 rides along — and is
		// erroneously attached to KDDI paths too (§IV-C).
		&Attachment{
			Router: "128.32.1.200", RouterAddr: BerkeleyRouter200,
			Nexthop: BerkeleyNexthop90, NeighborAS: ASCalREN,
			Policy: func(prefix netip.Prefix, path []uint32, attrs *bgp.PathAttrs) bool {
				if isCommodity(path) {
					attrs.AddCommunity(CommISPRoutes)
					attrs.LocalPref, attrs.HasLocalPref = 70, true
				} else {
					attrs.AddCommunity(CommI2Routes)
				}
				for _, asn := range path {
					if asn == ASLosNettos || asn == ASKDDI {
						attrs.AddCommunity(CommLosNettos)
					}
				}
				return true
			},
		},
		// Router 128.32.1.222: the §IV-B backdoor — two prefixes heard
		// directly from AT&T, unknown to the operators.
		&Attachment{
			Router: "128.32.1.222", RouterAddr: BerkeleyRouter222,
			Nexthop: BerkeleyNexthop157, NeighborAS: ASATT,
			Policy: func(prefix netip.Prefix, path []uint32, attrs *bgp.PathAttrs) bool {
				return prefix == backdoor[0] || prefix == backdoor[1]
			},
		},
	)
	return bs
}

// LoadBalanceGraph builds the Figure 2 TAMP graph from the baseline RIB.
func (b *BerkeleySite) LoadBalanceGraph() *tamp.Graph {
	return TAMPGraph(b.Name, b.BaselineRoutes())
}

// MistagRoutes returns the §IV-C subset: routes carrying the 2152:65297
// community, TAMP's "map any set of routes" mode.
func (b *BerkeleySite) MistagRoutes() []SiteRoute {
	var out []SiteRoute
	for _, r := range b.BaselineRoutes() {
		if r.Attrs.HasCommunity(CommLosNettos) {
			out = append(out, r)
		}
	}
	return out
}
