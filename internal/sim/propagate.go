package sim

import (
	"container/heap"
	"sort"
)

// routeKind ranks how a route was learned, in Gao–Rexford preference
// order: own < customer < peer < provider.
type routeKind uint8

const (
	kindNone routeKind = iota
	kindOwn
	kindCustomer
	kindPeer
	kindProvider
)

type pathEntry struct {
	kind routeKind
	hops int
	// via is the neighbor the route was learned from (0 for own).
	via uint32
}

func (e pathEntry) better(o pathEntry) bool {
	if o.kind == kindNone {
		return true
	}
	if e.kind != o.kind {
		return e.kind < o.kind
	}
	if e.hops != o.hops {
		return e.hops < o.hops
	}
	return e.via < o.via
}

// Routing computes Gao–Rexford policy-compliant best paths over a
// topology: customer-learned routes are exported to everyone; peer- and
// provider-learned routes only to customers. The valley-free property
// falls out of the three-phase computation below.
type Routing struct {
	t         *Topology
	cache     map[uint32]map[uint32]pathEntry
	pathCache map[uint64][]uint32
}

// NewRouting prepares a routing view of the topology. Results are
// memoized per destination; mutate the topology only before querying.
func NewRouting(t *Topology) *Routing {
	return &Routing{
		t:         t,
		cache:     make(map[uint32]map[uint32]pathEntry),
		pathCache: make(map[uint64][]uint32),
	}
}

// pathsTo computes every AS's best path entry toward destination dest.
func (r *Routing) pathsTo(dest uint32) map[uint32]pathEntry {
	if cached, ok := r.cache[dest]; ok {
		return cached
	}
	best := map[uint32]pathEntry{}
	if _, ok := r.t.ASes[dest]; !ok {
		r.cache[dest] = best
		return best
	}
	best[dest] = pathEntry{kind: kindOwn}

	// Phase 1 — customer routes: BFS up the provider hierarchy from dest.
	// x gets a customer route when one of its customers has a customer
	// (or own) route.
	queue := []uint32{dest}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, prov := range r.t.ASes[x].Providers {
			cand := pathEntry{kind: kindCustomer, hops: best[x].hops + 1, via: x}
			if cur, ok := best[prov]; !ok || cand.better(cur) {
				// Only first (BFS shortest) matters; ties broken by via.
				if !ok || cur.kind != kindCustomer || cand.hops < cur.hops ||
					(cand.hops == cur.hops && cand.via < cur.via) {
					best[prov] = cand
					if !ok || cur.kind != kindCustomer {
						queue = append(queue, prov)
					}
				}
			}
		}
	}

	// Phase 2 — peer routes: one hop across a peering from any AS holding
	// a customer/own route.
	type upd struct {
		asn uint32
		e   pathEntry
	}
	var peerUpdates []upd
	for asn, e := range best {
		if e.kind > kindCustomer {
			continue
		}
		for _, p := range r.t.ASes[asn].Peers {
			cand := pathEntry{kind: kindPeer, hops: e.hops + 1, via: asn}
			peerUpdates = append(peerUpdates, upd{p, cand})
		}
	}
	sort.Slice(peerUpdates, func(i, j int) bool { return peerUpdates[i].e.via < peerUpdates[j].e.via })
	for _, u := range peerUpdates {
		if cur, ok := best[u.asn]; !ok || u.e.better(cur) {
			best[u.asn] = u.e
		}
	}

	// Phase 3 — provider routes: Dijkstra down customer edges from every
	// AS that already has a route; providers export everything to
	// customers, and provider routes chain downward.
	pq := &entryHeap{}
	for asn, e := range best {
		heap.Push(pq, heapItem{asn: asn, e: e})
	}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(heapItem)
		if cur, ok := best[item.asn]; ok && cur.better(item.e) {
			continue
		}
		for _, cust := range r.t.ASes[item.asn].Customers {
			cand := pathEntry{kind: kindProvider, hops: best[item.asn].hops + 1, via: item.asn}
			if cur, ok := best[cust]; !ok || cand.better(cur) {
				best[cust] = cand
				heap.Push(pq, heapItem{asn: cust, e: cand})
			}
		}
	}
	r.cache[dest] = best
	return best
}

// Path returns from's AS path to dest, inclusive ([from, …, dest]), and
// whether a policy-compliant path exists. Callers must not modify the
// returned slice: (from, dest) pairs are memoized because large route
// tables query the same pair for every prefix an AS originates.
func (r *Routing) Path(from, dest uint32) ([]uint32, bool) {
	key := uint64(from)<<32 | uint64(dest)
	if p, ok := r.pathCache[key]; ok {
		return p, p != nil
	}
	p, ok := r.computePath(from, dest)
	r.pathCache[key] = p
	return p, ok
}

func (r *Routing) computePath(from, dest uint32) ([]uint32, bool) {
	best := r.pathsTo(dest)
	e, ok := best[from]
	if !ok {
		return nil, false
	}
	path := make([]uint32, 0, e.hops+1)
	cur := from
	for {
		path = append(path, cur)
		if cur == dest {
			return path, true
		}
		entry := best[cur]
		if entry.kind == kindNone || entry.kind == kindOwn {
			return nil, false // should not happen on a consistent table
		}
		cur = entry.via
		if len(path) > len(best)+1 {
			return nil, false // cycle guard
		}
	}
}

// Exports reports whether AS n would export its best route for dest to
// neighbor `to`: everything to customers; only own/customer routes to
// peers and providers.
func (r *Routing) Exports(n, to, dest uint32) bool {
	e, ok := r.pathsTo(dest)[n]
	if !ok {
		return false
	}
	nAS := r.t.ASes[n]
	if nAS == nil {
		return false
	}
	if containsASN(nAS.Customers, to) {
		return true
	}
	return e.kind == kindOwn || e.kind == kindCustomer
}

type heapItem struct {
	asn uint32
	e   pathEntry
}

type entryHeap []heapItem

func (h entryHeap) Len() int      { return len(h) }
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h entryHeap) Less(i, j int) bool {
	if h[i].e.hops != h[j].e.hops {
		return h[i].e.hops < h[j].e.hops
	}
	return h[i].asn < h[j].asn
}
func (h *entryHeap) Push(x any) { *h = append(*h, x.(heapItem)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
