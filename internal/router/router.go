// Package router implements a working BGP speaker on top of the
// repository's substrates: live sessions (bgp/fsm), a Loc-RIB with the
// full decision process (rib), and per-neighbor routing policies
// (policy). It originates prefixes, selects best paths, and advertises
// best-route changes to its peers with correct eBGP/iBGP semantics
// (AS-path prepending and nexthop-self on eBGP, no iBGP re-reflection,
// AS-loop rejection).
//
// The simulator generates the paper's event streams analytically; this
// package closes the loop for end-to-end tests and demos where incidents
// must *propagate* through real routers into the collector, the way they
// reached REX in the paper's deployments.
package router

import (
	"net"
	"net/netip"
	"sync"
	"time"

	"rex/internal/bgp"
	"rex/internal/bgp/fsm"
	"rex/internal/policy"
	"rex/internal/rib"
)

// Config parameterizes a router.
type Config struct {
	AS       uint32
	RouterID netip.Addr
	HoldTime time.Duration
	// Policy, when set, applies its per-neighbor route-maps (keyed by the
	// peer's BGP identifier) inbound and outbound.
	Policy *policy.Config
	// IGPCost feeds the decision process (nil: all nexthops reachable at
	// cost 0).
	IGPCost func(netip.Addr) (uint32, bool)
	// RouteReflector enables RFC 4456 reflection: iBGP routes from
	// Clients are reflected to every iBGP peer, routes from non-clients
	// to Clients only, with ORIGINATOR_ID/CLUSTER_LIST loop prevention.
	RouteReflector bool
	// ClusterID defaults to RouterID.
	ClusterID netip.Addr
	// Clients lists the client peers' BGP identifiers.
	Clients []netip.Addr
	// Logf, when set, receives debug lines.
	Logf func(format string, args ...any)
}

// Router is a BGP speaker. All exported methods are safe for concurrent
// use.
type Router struct {
	cfg Config

	mu         sync.Mutex
	loc        *rib.LocRib
	sessions   map[netip.Addr]*peerSession // by peer BGP ID
	originated map[netip.Prefix]struct{}

	isClosed bool
	closedCh chan struct{}
	wg       sync.WaitGroup
}

type peerSession struct {
	sess *fsm.Session
	ebgp bool
}

// New builds a router.
func New(cfg Config) *Router {
	if cfg.HoldTime == 0 {
		cfg.HoldTime = 30 * time.Second
	}
	if cfg.RouteReflector && !cfg.ClusterID.IsValid() {
		cfg.ClusterID = cfg.RouterID
	}
	return &Router{
		cfg:        cfg,
		loc:        rib.NewLocRib(rib.Decision{IGPCost: cfg.IGPCost}),
		sessions:   make(map[netip.Addr]*peerSession),
		originated: make(map[netip.Prefix]struct{}),
	}
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Originate installs a locally originated prefix and advertises it.
func (r *Router) Originate(prefix netip.Prefix) {
	attrs := &bgp.PathAttrs{
		Origin:  bgp.OriginIGP,
		ASPath:  nil, // empty: locally originated
		Nexthop: r.cfg.RouterID,
	}
	route := &rib.Route{
		Prefix:       prefix,
		Peer:         r.cfg.RouterID, // self
		PeerRouterID: r.cfg.RouterID,
		Attrs:        attrs,
		LearnedAt:    time.Now(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.originated[prefix] = struct{}{}
	if change, ok := r.loc.Update(route); ok {
		r.broadcastLocked(change, nil)
	}
}

// WithdrawOriginated withdraws a locally originated prefix.
func (r *Router) WithdrawOriginated(prefix netip.Prefix) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.originated, prefix)
	if change, ok := r.loc.Withdraw(r.cfg.RouterID, prefix); ok {
		r.broadcastLocked(change, nil)
	}
}

// Serve accepts inbound sessions on ln until Close.
func (r *Router) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-r.closed():
				return nil
			default:
				return err
			}
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			sess, err := fsm.Establish(conn, fsm.Config{
				LocalAS:  r.cfg.AS,
				LocalID:  r.cfg.RouterID,
				HoldTime: r.cfg.HoldTime,
			})
			if err != nil {
				r.logf("accept: %v", err)
				return
			}
			r.runSession(sess)
		}()
	}
}

// Connect dials a peer and runs the session in the background.
func (r *Router) Connect(addr string) error {
	sess, err := fsm.Dial(addr, fsm.Config{
		LocalAS:  r.cfg.AS,
		LocalID:  r.cfg.RouterID,
		HoldTime: r.cfg.HoldTime,
	})
	if err != nil {
		return err
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.runSession(sess)
	}()
	return nil
}

func (r *Router) runSession(sess *fsm.Session) {
	peerID := sess.PeerID()
	ps := &peerSession{sess: sess, ebgp: sess.PeerAS() != r.cfg.AS}
	r.mu.Lock()
	if old, dup := r.sessions[peerID]; dup {
		go old.sess.Close()
	}
	r.sessions[peerID] = ps
	// Initial table exchange: advertise every current best route that the
	// export rules allow toward this peer.
	for _, best := range r.loc.BestRoutes() {
		if r.mayExportLocked(ps, peerID, best) {
			r.sendRouteLocked(ps, peerID, best)
		}
	}
	r.mu.Unlock()
	r.logf("AS%d: session with %v (AS%d) up", r.cfg.AS, peerID, sess.PeerAS())

	for u := range sess.Updates() {
		r.handleUpdate(ps, peerID, sess.PeerAS(), u)
	}

	// Session down: drop its routes and propagate the fallout.
	r.mu.Lock()
	if r.sessions[peerID] == ps {
		delete(r.sessions, peerID)
	}
	for _, change := range r.loc.RemovePeer(peerID) {
		r.broadcastLocked(change, nil)
	}
	r.mu.Unlock()
	sess.Close()
	r.logf("AS%d: session with %v down (%v)", r.cfg.AS, peerID, sess.Err())
}

func (r *Router) handleUpdate(ps *peerSession, peerID netip.Addr, peerAS uint32, u *bgp.Update) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range u.Withdrawn {
		if change, ok := r.loc.Withdraw(peerID, p); ok {
			r.broadcastLocked(change, ps)
		}
	}
	if u.Attrs == nil {
		return
	}
	// AS-loop rejection.
	if u.Attrs.ASPath.Contains(r.cfg.AS) {
		return
	}
	// Reflection loop rejection (RFC 4456 §8).
	if !ps.ebgp {
		if u.Attrs.OriginatorID == r.cfg.RouterID {
			return
		}
		if r.cfg.RouteReflector {
			for _, c := range u.Attrs.ClusterList {
				if c == r.cfg.ClusterID {
					return
				}
			}
		}
	}
	for _, p := range u.NLRI {
		attrs := u.Attrs
		if r.cfg.Policy != nil {
			d := r.cfg.Policy.ApplyIn(peerID, p, u.Attrs)
			if !d.Permitted {
				// Policy-rejected: treat as withdrawal of any prior route.
				if change, ok := r.loc.Withdraw(peerID, p); ok {
					r.broadcastLocked(change, ps)
				}
				continue
			}
			attrs = d.Attrs
		}
		route := &rib.Route{
			Prefix:       p,
			Peer:         peerID,
			PeerRouterID: peerID,
			Attrs:        attrs,
			EBGP:         ps.ebgp,
			LearnedAt:    now,
		}
		if change, ok := r.loc.Update(route); ok {
			r.broadcastLocked(change, ps)
		}
	}
	_ = peerAS
}

// broadcastLocked advertises a best-route change to every session except
// `from` (the one that caused it — split horizon at the session level).
func (r *Router) broadcastLocked(change rib.BestChange, from *peerSession) {
	for peerID, ps := range r.sessions {
		if ps == from {
			continue
		}
		if change.New == nil {
			r.sendWithdrawLocked(ps, change.Prefix)
			continue
		}
		if !r.mayExportLocked(ps, peerID, change.New) {
			continue
		}
		r.sendRouteLocked(ps, peerID, change.New)
	}
}

func (r *Router) sendRouteLocked(ps *peerSession, peerID netip.Addr, route *rib.Route) {
	attrs := route.Attrs
	if ps.ebgp {
		// eBGP export: prepend own AS, nexthop self, strip LOCAL_PREF.
		out := attrs.Clone()
		out.ASPath = out.ASPath.Prepend(r.cfg.AS)
		out.Nexthop = r.cfg.RouterID
		out.HasLocalPref, out.LocalPref = false, 0
		attrs = out
		// Do not export to a peer whose AS is already on the path.
		if route.Attrs.ASPath.Contains(ps.sess.PeerAS()) {
			return
		}
	} else {
		// iBGP: attributes pass unchanged, except a route reflector
		// stamps the RFC 4456 attributes when reflecting an iBGP-learned
		// route.
		if r.cfg.RouteReflector && route.Peer != r.cfg.RouterID && !route.EBGP {
			out := attrs.Clone()
			if !out.OriginatorID.IsValid() {
				out.OriginatorID = route.Peer
			}
			out.ClusterList = append([]netip.Addr{r.cfg.ClusterID}, out.ClusterList...)
			attrs = out
		}
		if !attrs.Nexthop.IsValid() {
			out := attrs.Clone()
			out.Nexthop = r.cfg.RouterID
			attrs = out
		}
	}
	if r.cfg.Policy != nil {
		d := r.cfg.Policy.ApplyOut(peerID, route.Prefix, attrs)
		if !d.Permitted {
			return
		}
		attrs = d.Attrs
	}
	u := &bgp.Update{Attrs: attrs, NLRI: []netip.Prefix{route.Prefix}}
	if err := ps.sess.Send(u); err != nil {
		r.logf("AS%d: send to %v: %v", r.cfg.AS, peerID, err)
	}
}

func (r *Router) sendWithdrawLocked(ps *peerSession, prefix netip.Prefix) {
	u := &bgp.Update{Withdrawn: []netip.Prefix{prefix}}
	if err := ps.sess.Send(u); err != nil {
		r.logf("AS%d: withdraw send: %v", r.cfg.AS, err)
	}
}

// mayExportLocked applies the iBGP export rules: iBGP-learned routes go
// to iBGP peers only through a route reflector, per the RFC 4456
// reflection rules, and never back to the injector.
func (r *Router) mayExportLocked(ps *peerSession, peerID netip.Addr, route *rib.Route) bool {
	if ps.ebgp || route.Peer == r.cfg.RouterID || route.EBGP {
		return true
	}
	if !r.cfg.RouteReflector {
		return false
	}
	if route.Peer == peerID {
		return false // never back to the injector
	}
	// Client routes reflect to everyone; non-client routes to clients
	// only.
	return r.isClient(route.Peer) || r.isClient(peerID)
}

// isClient reports whether the peer is a configured reflection client.
func (r *Router) isClient(peer netip.Addr) bool {
	for _, c := range r.cfg.Clients {
		if c == peer {
			return true
		}
	}
	return false
}

// Best returns the current best route for prefix.
func (r *Router) Best(prefix netip.Prefix) (*rib.Route, rib.Step) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.loc.Best(prefix)
}

// NumRoutes returns the Loc-RIB candidate count.
func (r *Router) NumRoutes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.loc.NumRoutes()
}

// Peers returns the connected peers' BGP identifiers.
func (r *Router) Peers() []netip.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]netip.Addr, 0, len(r.sessions))
	for id := range r.sessions {
		out = append(out, id)
	}
	return out
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

func (r *Router) closed() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.isClosed {
		return closedChan
	}
	if r.closedCh == nil {
		r.closedCh = make(chan struct{})
	}
	return r.closedCh
}

// Close shuts every session down and waits for the goroutines.
func (r *Router) Close() error {
	r.mu.Lock()
	sessions := make([]*peerSession, 0, len(r.sessions))
	for _, ps := range r.sessions {
		sessions = append(sessions, ps)
	}
	r.isClosed = true
	if r.closedCh != nil {
		close(r.closedCh)
		r.closedCh = nil
	}
	r.mu.Unlock()
	for _, ps := range sessions {
		ps.sess.Close()
	}
	r.wg.Wait()
	return nil
}
