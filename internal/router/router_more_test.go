package router

import (
	"net/netip"
	"testing"
	"time"

	"rex/internal/bgp"
)

// TestSessionReplacement: a new session from the same router ID replaces
// the old one instead of leaking it.
func TestSessionReplacement(t *testing.T) {
	b, bAddr := startRouter(t, Config{AS: 200, RouterID: netip.MustParseAddr("2.0.0.1")})
	s1, err := dialRaw(bAddr, 300, "3.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	waitUntil(t, "first session", func() bool { return len(b.Peers()) == 1 })

	s2, err := dialRaw(bAddr, 300, "3.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// The old session is closed by the router.
	select {
	case <-s1.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("old session not replaced")
	}
	if got := len(b.Peers()); got != 1 {
		t.Errorf("peers = %d after replacement", got)
	}
	// The new session still works.
	err = s2.Send(&bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin: bgp.OriginIGP, ASPath: bgp.Sequence(300, 400),
			Nexthop: netip.MustParseAddr("3.0.0.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.7.0.0/16")},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "route via new session", func() bool { return b.NumRoutes() == 1 })
}

// TestWithdrawOriginatedNoOp: withdrawing a prefix that was never
// originated changes nothing.
func TestWithdrawOriginatedNoOp(t *testing.T) {
	r := New(Config{AS: 100, RouterID: netip.MustParseAddr("1.0.0.1")})
	defer r.Close()
	r.WithdrawOriginated(netip.MustParsePrefix("10.9.0.0/16"))
	if r.NumRoutes() != 0 {
		t.Error("phantom route appeared")
	}
}

// TestEBGPPrependAndNoExportToOwnAS: B re-exports an AS300 route to an
// eBGP peer with its own AS prepended, but never back toward an AS
// already on the path.
func TestEBGPPrependAndNoExportToOwnAS(t *testing.T) {
	_, bAddr := startRouter(t, Config{AS: 200, RouterID: netip.MustParseAddr("2.0.0.1")})
	src, err := dialRaw(bAddr, 300, "3.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// A second eBGP peer in AS400 receiving B's exports.
	dst, err := dialRaw(bAddr, 400, "4.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	// And a third peer back in AS300: must NOT receive the route.
	loop, err := dialRaw(bAddr, 300, "3.0.0.2")
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()

	err = src.Send(&bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin: bgp.OriginIGP, ASPath: bgp.Sequence(300, 500),
			Nexthop: netip.MustParseAddr("3.0.0.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.8.0.0/16")},
	})
	if err != nil {
		t.Fatal(err)
	}

	select {
	case u := <-dst.Updates():
		if u == nil {
			t.Fatal("dst channel closed")
		}
		if got := u.Attrs.ASPath.String(); got != "200 300 500" {
			t.Errorf("exported path = %q, want prepended", got)
		}
		if u.Attrs.Nexthop != netip.MustParseAddr("2.0.0.1") {
			t.Errorf("nexthop = %v, want nexthop-self", u.Attrs.Nexthop)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no export to AS400")
	}
	// The AS300 peer gets nothing.
	select {
	case u := <-loop.Updates():
		t.Fatalf("route exported back toward AS300: %v", u)
	case <-time.After(300 * time.Millisecond):
	}
}
