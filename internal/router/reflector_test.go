package router

import (
	"net/netip"
	"testing"
	"time"

	"rex/internal/bgp"
)

// TestRouteReflection: RR with two clients; a route injected by client 1
// is reflected to client 2 with ORIGINATOR_ID and CLUSTER_LIST stamped.
func TestRouteReflection(t *testing.T) {
	client1 := netip.MustParseAddr("2.0.0.11")
	client2 := netip.MustParseAddr("2.0.0.12")
	_, rrAddr := startRouter(t, Config{
		AS: 200, RouterID: netip.MustParseAddr("2.0.0.1"),
		RouteReflector: true,
		Clients:        []netip.Addr{client1, client2},
	})
	s1, err := dialRaw(rrAddr, 200, client1.String())
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := dialRaw(rrAddr, 200, client2.String())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	err = s1.Send(&bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin: bgp.OriginIGP, ASPath: bgp.Sequence(300, 400),
			Nexthop: netip.MustParseAddr("9.9.9.9"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-s2.Updates():
		if u == nil {
			t.Fatal("client2 channel closed")
		}
		if u.Attrs.OriginatorID != client1 {
			t.Errorf("ORIGINATOR_ID = %v, want %v", u.Attrs.OriginatorID, client1)
		}
		if len(u.Attrs.ClusterList) != 1 || u.Attrs.ClusterList[0] != netip.MustParseAddr("2.0.0.1") {
			t.Errorf("CLUSTER_LIST = %v", u.Attrs.ClusterList)
		}
		// iBGP reflection leaves path and nexthop alone.
		if u.Attrs.ASPath.String() != "300 400" || u.Attrs.Nexthop != netip.MustParseAddr("9.9.9.9") {
			t.Errorf("reflected attrs = %v", u.Attrs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client2 never received the reflection")
	}
	// The injector does not get its own route back.
	select {
	case u := <-s1.Updates():
		t.Fatalf("route reflected back to injector: %v", u)
	case <-time.After(300 * time.Millisecond):
	}
}

// TestNonClientToClientOnly: a route from a non-client iBGP peer reaches
// clients but not other non-clients.
func TestNonClientToClientOnly(t *testing.T) {
	client := netip.MustParseAddr("2.0.0.11")
	nonClientA := netip.MustParseAddr("2.0.0.21")
	nonClientB := netip.MustParseAddr("2.0.0.22")
	_, rrAddr := startRouter(t, Config{
		AS: 200, RouterID: netip.MustParseAddr("2.0.0.1"),
		RouteReflector: true,
		Clients:        []netip.Addr{client},
	})
	sc, err := dialRaw(rrAddr, 200, client.String())
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	sa, err := dialRaw(rrAddr, 200, nonClientA.String())
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := dialRaw(rrAddr, 200, nonClientB.String())
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	err = sa.Send(&bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin: bgp.OriginIGP, ASPath: bgp.Sequence(300),
			Nexthop: netip.MustParseAddr("9.9.9.9"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.2.0.0/16")},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-sc.Updates():
		if u == nil || u.Attrs.OriginatorID != nonClientA {
			t.Fatalf("client reflection wrong: %v", u)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client never received non-client route")
	}
	select {
	case u := <-sb.Updates():
		t.Fatalf("non-client received non-client route: %v", u)
	case <-time.After(300 * time.Millisecond):
	}
}

// TestClusterLoopRejected: a route carrying the RR's own cluster ID in
// CLUSTER_LIST is dropped.
func TestClusterLoopRejected(t *testing.T) {
	client := netip.MustParseAddr("2.0.0.11")
	rr, rrAddr := startRouter(t, Config{
		AS: 200, RouterID: netip.MustParseAddr("2.0.0.1"),
		RouteReflector: true,
		Clients:        []netip.Addr{client},
	})
	s, err := dialRaw(rrAddr, 200, client.String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Looped route.
	err = s.Send(&bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin: bgp.OriginIGP, ASPath: bgp.Sequence(300),
			Nexthop:     netip.MustParseAddr("9.9.9.9"),
			ClusterList: []netip.Addr{netip.MustParseAddr("2.0.0.1")},
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.3.0.0/16")},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Clean route as a fence.
	err = s.Send(&bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin: bgp.OriginIGP, ASPath: bgp.Sequence(300),
			Nexthop: netip.MustParseAddr("9.9.9.9"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.4.0.0/16")},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "clean route", func() bool { return rr.NumRoutes() == 1 })
	if best, _ := rr.Best(netip.MustParsePrefix("10.3.0.0/16")); best != nil {
		t.Error("cluster-looped route installed")
	}
}
