package router

import (
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/bgp/fsm"
	"rex/internal/collector"
	"rex/internal/event"
	"rex/internal/policy"
	"rex/internal/rib"
)

func listen(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln, ln.Addr().String()
}

func startRouter(t *testing.T, cfg Config) (*Router, string) {
	t.Helper()
	r := New(cfg)
	ln, addr := listen(t)
	go func() { _ = r.Serve(ln) }()
	t.Cleanup(func() {
		ln.Close()
		r.Close()
	})
	return r, addr
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", what)
}

// TestEBGPPropagationChain builds a real three-node network:
//
//	routerA (AS100) --eBGP-- routerB (AS200) --iBGP-- collector (AS200)
//
// A originates a prefix; the collector must receive it via B with path
// [100] (B's iBGP export does not prepend). When A's session dies, the
// withdrawal propagates and arrives at the collector *augmented*.
func TestEBGPPropagationChain(t *testing.T) {
	prefix := netip.MustParsePrefix("10.1.0.0/16")

	a, aAddr := startRouter(t, Config{AS: 100, RouterID: netip.MustParseAddr("1.0.0.1")})
	b, _ := startRouter(t, Config{AS: 200, RouterID: netip.MustParseAddr("2.0.0.1")})

	rec := collector.NewRecorder()
	coll := collector.New(collector.Config{
		LocalAS: 200, LocalID: netip.MustParseAddr("2.0.0.99"),
		Now: time.Now, WithdrawOnSessionLoss: false,
	}, rec.Handle)
	collLn, collAddr := listen(t)
	go func() { _ = coll.Serve(collLn) }()
	t.Cleanup(func() { coll.Close() })

	a.Originate(prefix)
	if err := b.Connect(aAddr); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "B learned the route", func() bool { return b.NumRoutes() >= 1 })
	best, step := b.Best(prefix)
	if best == nil {
		t.Fatal("B has no best route")
	}
	if !best.EBGP || best.Attrs.ASPath.String() != "100" || step == rib.StepNone {
		t.Fatalf("B best = %v (step %v)", best, step)
	}
	// eBGP export set nexthop-self to A's router ID.
	if best.Attrs.Nexthop != netip.MustParseAddr("1.0.0.1") {
		t.Errorf("nexthop = %v", best.Attrs.Nexthop)
	}

	// B peers (iBGP) with the collector; initial table exchange delivers
	// the route.
	if err := b.Connect(collAddr); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "collector heard announce", func() bool { return rec.Len() >= 1 })
	events := rec.Events()
	if events[0].Type != event.Announce || events[0].Prefix != prefix {
		t.Fatalf("collector event = %v", &events[0])
	}
	if events[0].Attrs.ASPath.String() != "100" {
		t.Errorf("collector path = %v (iBGP must not prepend)", events[0].Attrs.ASPath)
	}

	// A withdraws: the chain must deliver a withdrawal to the collector,
	// augmented with the attributes being withdrawn.
	a.WithdrawOriginated(prefix)
	waitUntil(t, "collector heard withdraw", func() bool { return rec.Len() >= 2 })
	w := rec.Events()[1]
	if w.Type != event.Withdraw || w.Attrs == nil || w.Attrs.ASPath.String() != "100" {
		t.Fatalf("withdrawal = %v attrs=%v", &w, w.Attrs)
	}
	waitUntil(t, "B dropped the route", func() bool { return b.NumRoutes() == 0 })
}

// TestSessionLossPropagatesWithdrawals kills the A–B session and checks B
// withdraws A's routes downstream.
func TestSessionLossPropagatesWithdrawals(t *testing.T) {
	prefix := netip.MustParsePrefix("10.2.0.0/16")
	a, aAddr := startRouter(t, Config{AS: 100, RouterID: netip.MustParseAddr("1.0.0.1")})
	b, _ := startRouter(t, Config{AS: 200, RouterID: netip.MustParseAddr("2.0.0.1")})
	rec := collector.NewRecorder()
	coll := collector.New(collector.Config{
		LocalAS: 200, LocalID: netip.MustParseAddr("2.0.0.99"), Now: time.Now,
	}, rec.Handle)
	collLn, collAddr := listen(t)
	go func() { _ = coll.Serve(collLn) }()
	t.Cleanup(func() { coll.Close() })

	a.Originate(prefix)
	if err := b.Connect(aAddr); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect(collAddr); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "announce reached collector", func() bool { return rec.Len() >= 1 })

	// Kill A entirely: B's session drops, RemovePeer fires, and the
	// withdrawal propagates.
	a.Close()
	waitUntil(t, "withdraw reached collector", func() bool { return rec.Len() >= 2 })
	w := rec.Events()[1]
	if w.Type != event.Withdraw || w.Prefix != prefix {
		t.Fatalf("event = %v", &w)
	}
}

// TestASLoopRejection: a route whose path already contains the local AS
// is never installed.
func TestASLoopRejection(t *testing.T) {
	b, bAddr := startRouter(t, Config{AS: 200, RouterID: netip.MustParseAddr("2.0.0.1")})
	// A raw eBGP peer sends a looped path.
	sess, err := dialRaw(bAddr, 300, "3.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	err = sess.Send(&bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.Sequence(300, 200, 400), // contains B's AS
			Nexthop: netip.MustParseAddr("3.0.0.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.3.0.0/16")},
	})
	if err != nil {
		t.Fatal(err)
	}
	// And a clean one, to have something to wait on.
	err = sess.Send(&bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.Sequence(300, 400),
			Nexthop: netip.MustParseAddr("3.0.0.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.4.0.0/16")},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "clean route installed", func() bool { return b.NumRoutes() == 1 })
	if best, _ := b.Best(netip.MustParsePrefix("10.3.0.0/16")); best != nil {
		t.Error("looped route installed")
	}
}

// TestInboundPolicyApplied: a router with the Berkeley-style LOCAL_PREF
// policy rewrites what it installs.
func TestInboundPolicyApplied(t *testing.T) {
	cfgText := `hostname b
router bgp 200
 neighbor 3.0.0.1 route-map IN in
!
ip community-list standard ISP permit 11423:65350
route-map IN permit 10
 match community ISP
 set local-preference 80
route-map IN deny 20
`
	rcfg, err := policy.Parse(strings.NewReader(cfgText))
	if err != nil {
		t.Fatal(err)
	}
	b, bAddr := startRouter(t, Config{AS: 200, RouterID: netip.MustParseAddr("2.0.0.1"), Policy: rcfg})
	sess, err := dialRaw(bAddr, 300, "3.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	tagged := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, ASPath: bgp.Sequence(300, 400),
		Nexthop:     netip.MustParseAddr("3.0.0.1"),
		Communities: []bgp.Community{bgp.MakeCommunity(11423, 65350)},
	}
	if err := sess.Send(&bgp.Update{Attrs: tagged, NLRI: []netip.Prefix{netip.MustParsePrefix("10.5.0.0/16")}}); err != nil {
		t.Fatal(err)
	}
	untagged := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, ASPath: bgp.Sequence(300, 401),
		Nexthop: netip.MustParseAddr("3.0.0.1"),
	}
	if err := sess.Send(&bgp.Update{Attrs: untagged, NLRI: []netip.Prefix{netip.MustParsePrefix("10.6.0.0/16")}}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "tagged route installed", func() bool { return b.NumRoutes() >= 1 })
	best, _ := b.Best(netip.MustParsePrefix("10.5.0.0/16"))
	if best == nil || !best.Attrs.HasLocalPref || best.Attrs.LocalPref != 80 {
		t.Fatalf("policy did not set local-pref: %v", best)
	}
	// The untagged route is denied by the route-map.
	time.Sleep(100 * time.Millisecond)
	if best, _ := b.Best(netip.MustParsePrefix("10.6.0.0/16")); best != nil {
		t.Error("denied route installed")
	}
}

// dialRaw establishes a bare fsm session acting as an external peer.
func dialRaw(addr string, as uint32, id string) (*fsm.Session, error) {
	return fsm.Dial(addr, fsm.Config{LocalAS: as, LocalID: netip.MustParseAddr(id)})
}
