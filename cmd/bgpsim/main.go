// Command bgpsim generates the paper's incident scenarios from the
// built-in Internet simulator. It can write the baseline routing table
// (MRT TABLE_DUMP_V2), write the incident's event stream (text/.evb/
// .mrt), or replay baseline+events live over real BGP sessions into a
// running rexd collector.
//
// Examples:
//
//	bgpsim -scenario leak -events leak.events -rib baseline.mrt
//	bgpsim -scenario med -duration 2s -events med.evb
//	bgpsim -scenario flap -flaps 30 -replay 127.0.0.1:1790
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"sort"
	"time"

	"rex/internal/bgp"
	"rex/internal/bgp/fsm"
	"rex/internal/event"
	"rex/internal/rib"
	"rex/internal/sim"
	"rex/internal/streamfile"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bgpsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bgpsim", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "", "leak, flap, med, reset")
		events   = fs.String("events", "", "write the event stream here")
		ribOut   = fs.String("rib", "", "write the baseline RIB (MRT table dump) here")
		replay   = fs.String("replay", "", "replay live into a collector at host:port")
		flaps    = fs.Int("flaps", 20, "flap count (scenario flap)")
		cycles   = fs.Int("cycles", 2, "leak cycles (scenario leak)")
		duration = fs.Duration("duration", time.Second, "oscillation duration (scenario med)")
		localAS  = fs.Uint("as", 25, "AS number for replayed sessions")
		gap      = fs.Duration("gap", 0, "fixed delay between replayed updates (0 = full speed)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenario == "" {
		return fmt.Errorf("-scenario is required")
	}
	sc, err := buildScenario(*scenario, *flaps, *cycles, *duration)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scenario %s: %d baseline routes, %d events, %d affected prefixes\n",
		sc.Name, len(sc.Baseline), len(sc.Events), len(sc.MovedPrefixes))

	if *ribOut != "" {
		if err := writeBaseline(*ribOut, sc, time.Now()); err != nil {
			return err
		}
	}
	if *events != "" {
		if err := streamfile.WriteEvents(*events, sc.Events); err != nil {
			return err
		}
	}
	if *replay != "" {
		return replayLive(*replay, uint32(*localAS), sc, *gap)
	}
	return nil
}

func buildScenario(name string, flaps, cycles int, duration time.Duration) (*sim.Scenario, error) {
	start := time.Now().Add(-time.Hour).Truncate(time.Second)
	switch name {
	case "leak":
		b := sim.Berkeley(sim.BerkeleyConfig{Misconfigured: true})
		return sim.PeerLeakScenario(b, cycles, start), nil
	case "flap":
		is := sim.ISPAnon(sim.ISPAnonConfig{})
		return sim.CustomerFlapScenario(is, flaps, time.Minute, start), nil
	case "med":
		is := sim.ISPAnon(sim.ISPAnonConfig{})
		return sim.MEDOscillationScenario(is, duration, 0, 0, start), nil
	case "reset":
		is := sim.ISPAnon(sim.ISPAnonConfig{})
		baseline := is.BaselineRoutes()
		return sim.SessionResetScenario(is.Site, baseline, is.Tier1s[0], 30*time.Second, start), nil
	default:
		return nil, fmt.Errorf("unknown scenario %q", name)
	}
}

func writeBaseline(path string, sc *sim.Scenario, now time.Time) error {
	return streamfile.WriteRIB(path, baselineRIB(sc, now), netip.MustParseAddr("10.255.0.1"), now)
}

// replayLive opens one BGP session per distinct router in the scenario
// and plays the baseline announcements followed by the incident's events
// in order.
func replayLive(addr string, localAS uint32, sc *sim.Scenario, gap time.Duration) error {
	sessions := map[netip.Addr]*fsm.Session{}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()
	sessionFor := func(router netip.Addr) (*fsm.Session, error) {
		if s, ok := sessions[router]; ok {
			return s, nil
		}
		s, err := fsm.Dial(addr, fsm.Config{LocalAS: localAS, LocalID: router})
		if err != nil {
			return nil, fmt.Errorf("dial for router %v: %w", router, err)
		}
		sessions[router] = s
		return s, nil
	}

	send := func(router netip.Addr, upd *bgp.Update) error {
		s, err := sessionFor(router)
		if err != nil {
			return err
		}
		if err := s.Send(upd); err != nil {
			return err
		}
		if gap > 0 {
			time.Sleep(gap)
		}
		return nil
	}

	// Baseline first.
	for _, r := range sc.Baseline {
		upd := &bgp.Update{Attrs: r.Attrs, NLRI: []netip.Prefix{r.Prefix}}
		if err := send(r.Attachment.RouterAddr, upd); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "replayed %d baseline routes over %d sessions\n", len(sc.Baseline), len(sessions))

	ordered := append(event.Stream(nil), sc.Events...)
	ordered.SortByTime()
	for i := range ordered {
		e := &ordered[i]
		upd := &bgp.Update{}
		switch e.Type {
		case event.Announce:
			upd.Attrs = e.Attrs
			upd.NLRI = []netip.Prefix{e.Prefix}
		case event.Withdraw:
			upd.Withdrawn = []netip.Prefix{e.Prefix}
		}
		if err := send(e.Peer, upd); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "replayed %d events\n", len(ordered))
	return nil
}

// baselineRIB converts the scenario baseline to rib routes sorted for a
// table dump.
func baselineRIB(sc *sim.Scenario, now time.Time) []*rib.Route {
	out := make([]*rib.Route, 0, len(sc.Baseline))
	for _, r := range sc.Baseline {
		out = append(out, r.RIBRoute(now))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix != out[j].Prefix {
			if out[i].Prefix.Addr() != out[j].Prefix.Addr() {
				return out[i].Prefix.Addr().Less(out[j].Prefix.Addr())
			}
			return out[i].Prefix.Bits() < out[j].Prefix.Bits()
		}
		return out[i].Peer.Less(out[j].Peer)
	})
	return out
}
