package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRexfleetChild is not a test: it is the collector subprocess,
// re-exec'd from the test binary by the supervisor under test (the
// same trick the journal crash tests use). It skips in a normal run.
func TestRexfleetChild(t *testing.T) {
	args := os.Getenv("REXFLEET_CHILD_ARGS")
	if args == "" {
		t.Skip("re-exec helper, not a test")
	}
	if err := run(strings.Split(args, "\n")); err != nil {
		fmt.Fprintln(os.Stderr, "rexfleet child:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestFleetSIGKILLRecovery runs the whole supervisor in-process with
// collectors as SIGKILLed-and-respawned subprocesses, and requires the
// final analysis output to be byte-identical to a single-process
// replay: crash recovery with no gaps and no duplicates, end to end
// across real process boundaries.
func TestFleetSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and runs a multi-second soak")
	}
	old := childCommand
	defer func() { childCommand = old }()
	childCommand = func(args []string) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestRexfleetChild$")
		cmd.Env = append(os.Environ(), "REXFLEET_CHILD_ARGS="+strings.Join(args, "\n"))
		return cmd
	}
	err := run([]string{
		"-feeds=2",
		"-events=2500",
		"-throttle=300us",
		"-kill-every=300ms",
		"-check",
		"-timeout=90s",
		"-log-level=warn",
		"-dir=" + t.TempDir(),
	})
	if err != nil {
		t.Fatalf("fleet run with SIGKILL chaos failed: %v", err)
	}
}

// TestFleetNodeSIGKILL runs full chaos: collectors AND the analysis
// node itself are SIGKILLed and respawned while the run is in flight.
// The node is the durable subprocess role, so every kill exercises the
// receiver's recovery path (checkpoint restore, orphan-tail truncation,
// feed resume at durable cursors), and the stitched per-incarnation
// snapshot frames must still be byte-identical to the single-process
// replay. The test also requires that the node really died at least
// once — the frames file records one segment per incarnation.
func TestFleetNodeSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and runs a multi-second soak")
	}
	old := childCommand
	defer func() { childCommand = old }()
	childCommand = func(args []string) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestRexfleetChild$")
		cmd.Env = append(os.Environ(), "REXFLEET_CHILD_ARGS="+strings.Join(args, "\n"))
		return cmd
	}
	dir := t.TempDir()
	err := run([]string{
		"-feeds=2",
		"-events=2500",
		"-throttle=300us",
		"-kill-every=700ms",
		"-node-kill-every=900ms",
		"-checkpoint-every=200ms",
		"-check",
		"-timeout=120s",
		"-log-level=warn",
		"-dir=" + dir,
	})
	if err != nil {
		t.Fatalf("fleet run with node SIGKILL chaos failed: %v", err)
	}
	segs, err := readFrames(framesPath(filepath.Join(dir, "node")))
	if err != nil {
		t.Fatalf("read node frames: %v", err)
	}
	if len(segs) < 2 {
		t.Fatalf("node was never SIGKILLed (%d incarnation(s)); the chaos cadence is too slow for this scenario", len(segs))
	}
	t.Logf("node survived %d incarnations", len(segs))
}

// TestFleetHealthy is the no-chaos baseline of the same differential.
func TestFleetHealthy(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	old := childCommand
	defer func() { childCommand = old }()
	childCommand = func(args []string) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestRexfleetChild$")
		cmd.Env = append(os.Environ(), "REXFLEET_CHILD_ARGS="+strings.Join(args, "\n"))
		return cmd
	}
	err := run([]string{
		"-feeds=3",
		"-events=1500",
		"-throttle=0",
		"-check",
		"-timeout=60s",
		"-log-level=warn",
		"-dir=" + t.TempDir(),
	})
	if err != nil {
		t.Fatalf("healthy fleet run failed: %v", err)
	}
}
