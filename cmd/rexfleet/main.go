// Command rexfleet runs a collector fleet against one analysis node,
// end to end on one machine: a relay receiver feeding the streaming
// pipeline, plus N collector subprocesses, each journaling its share
// of a simulated ISP scenario locally and streaming it over the relay
// protocol with ack/resume. It is the integration harness for the
// fan-in tier — the moving parts a real deployment has (separate
// processes, real TCP, local journals, a supervisor) in one command.
//
// The scenario is deterministic: every collector regenerates the same
// simulated site from -seed and takes the substream for its -index, so
// a collector that crashes and restarts rebuilds exactly the journal
// it lost and resumes from the receiver's ack. -kill-every turns that
// into a chaos loop — SIGKILL a collector round-robin, respawn it, and
// let recovery do the rest. With -check the run ends by replaying the
// whole scenario single-process and comparing analysis output
// byte-for-byte; any divergence is an error.
//
// -node-kill-every extends the chaos to the analysis node itself: the
// receiver moves out of the supervisor into a durable child process
// (journal + checkpoints under the fleet root) that is SIGKILLed and
// respawned on that cadence, recovering from its own disk while the
// feeds resend the truncated tail; see node.go. -check then stitches
// the node's per-incarnation snapshot records and demands the same
// byte-identical output.
//
// Example (a 30-second soak with collector kills every 2s and node
// kills every 3s):
//
//	rexfleet -feeds 3 -events 6000 -kill-every 2s -node-kill-every 3s -check
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/core/tamp"
	"rex/internal/event"
	"rex/internal/journal"
	"rex/internal/obs"
	"rex/internal/relay"
	"rex/internal/sim"
)

// fleetT0 anchors the simulated scenario; fixed so every process in
// the fleet regenerates identical streams.
var fleetT0 = time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rexfleet:", err)
		os.Exit(1)
	}
}

// fleetOpts is every knob both roles need; the supervisor forwards the
// scenario subset to its collectors verbatim.
type fleetOpts struct {
	feeds     int
	events    int
	span      time.Duration
	seed      int64
	throttle  time.Duration
	heartbeat time.Duration
	fsync     string
	logLevel  string

	listen        string
	dir           string
	killEvery     time.Duration
	nodeKillEvery time.Duration
	ckptEvery     time.Duration
	timeout       time.Duration
	check         bool
	window        time.Duration
	snapEvery     time.Duration
	staleAfter    time.Duration

	role  string
	index int
	addr  string
	jdir  string
}

func run(args []string) error {
	fs := flag.NewFlagSet("rexfleet", flag.ContinueOnError)
	var o fleetOpts
	fs.IntVar(&o.feeds, "feeds", 3, "collector count")
	fs.IntVar(&o.events, "events", 6000, "total events in the simulated scenario")
	fs.DurationVar(&o.span, "span", 30*time.Minute, "event-time span of the scenario")
	fs.Int64Var(&o.seed, "seed", 7, "scenario seed")
	fs.DurationVar(&o.throttle, "throttle", 100*time.Microsecond, "pause between a collector's journal appends, spreading the stream so kills land mid-flight")
	fs.DurationVar(&o.heartbeat, "heartbeat", 50*time.Millisecond, "feed heartbeat cadence")
	fs.StringVar(&o.fsync, "fsync", "never", "collector journal fsync policy: always, interval or never")
	fs.StringVar(&o.listen, "listen", "127.0.0.1:0", "receiver listen address")
	fs.StringVar(&o.dir, "dir", "", "root directory for collector journals (default: a fresh temp dir)")
	fs.DurationVar(&o.killEvery, "kill-every", 0, "SIGKILL a collector this often, round-robin (0 disables the chaos)")
	fs.DurationVar(&o.nodeKillEvery, "node-kill-every", 0, "SIGKILL the analysis node this often (0 disables; setting it runs the node as a durable subprocess instead of in-process)")
	fs.DurationVar(&o.ckptEvery, "checkpoint-every", 500*time.Millisecond, "analysis-node checkpoint cadence (subprocess node mode)")
	fs.DurationVar(&o.timeout, "timeout", 2*time.Minute, "abort if the fleet has not delivered everything in this long")
	fs.BoolVar(&o.check, "check", false, "after the run, replay the scenario single-process and require byte-identical analysis output")
	fs.DurationVar(&o.window, "window", 10*time.Minute, "analysis window (event time)")
	fs.DurationVar(&o.snapEvery, "snapshot-every", 2*time.Minute, "periodic snapshot cadence (event time)")
	fs.DurationVar(&o.staleAfter, "stale-after", 2*time.Second, "silence after which a feed stops gating the merge and is flagged stale")
	fs.StringVar(&o.logLevel, "log-level", "info", "lowest log level to emit (debug, info, warn, error)")
	fs.StringVar(&o.role, "role", "supervisor", "internal: supervisor, collector or node")
	fs.IntVar(&o.index, "index", 0, "internal: collector index")
	fs.StringVar(&o.addr, "addr", "", "internal: receiver address for a collector")
	fs.StringVar(&o.jdir, "journal-dir", "", "internal: collector journal directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lv, err := obs.ParseLevel(o.logLevel)
	if err != nil {
		return fmt.Errorf("bad -log-level: %w", err)
	}
	obs.SetLogLevel(lv)
	if o.feeds < 1 {
		return fmt.Errorf("-feeds must be at least 1")
	}
	switch o.role {
	case "collector":
		return runCollector(o)
	case "node":
		return runNode(o)
	}
	if o.nodeKillEvery > 0 {
		return runSupervisorNode(o)
	}
	return runSupervisor(o)
}

func feedID(i int) string { return fmt.Sprintf("feed-%02d", i) }

// substreams regenerates the deterministic scenario and its per-feed
// split. Every process computes this identically from the flags alone.
func substreams(o fleetOpts) map[string]event.Stream {
	is := sim.ISPAnon(sim.ISPAnonConfig{PoPs: 2, RRsPerPoP: 2, Tier1Peers: 3,
		CustomerStubs: 12, InternetStubs: 12, PrefixesPerStub: 2})
	s := sim.BenchEvents(is.Site, is.BaselineRoutes(), o.events, o.span, fleetT0, o.seed)
	split := sim.PartitionByPeer(s, o.feeds)
	parts := map[string]event.Stream{}
	for i, p := range split {
		parts[feedID(i)] = p
	}
	return parts
}

func analysisConfig(o fleetOpts) pipeline.Config {
	return pipeline.Config{
		Window:        o.window,
		SnapshotEvery: o.snapEvery,
		SpikeK:        8,
		Site:          "fleet",
		Prune:         tamp.PruneOptions{KeepDepth: 3},
	}
}

// runCollector is the child role: journal my substream locally (paced
// by -throttle), stream the journal to the receiver, trim behind its
// acks. A restart finds the journal, resumes appending at its end —
// the regenerated stream is identical — and the feed resumes at the
// receiver's cursor.
func runCollector(o fleetOpts) error {
	if o.addr == "" || o.jdir == "" {
		return fmt.Errorf("collector role needs -addr and -journal-dir")
	}
	pol, err := journal.ParseFsyncPolicy(o.fsync)
	if err != nil {
		return fmt.Errorf("bad -fsync: %w", err)
	}
	id := feedID(o.index)
	mine, ok := substreams(o)[id]
	if !ok {
		return fmt.Errorf("index %d out of range for %d feeds", o.index, o.feeds)
	}

	var f *relay.Feed
	w, err := journal.Open(o.jdir, journal.Options{
		Fsync:    pol,
		OnAppend: func(uint64) { f.Wake() },
	})
	if err != nil {
		return err
	}
	f = relay.NewFeed(relay.FeedConfig{
		ID: id, Dir: o.jdir, Addr: o.addr,
		HeartbeatEvery: o.heartbeat,
		MinBackoff:     50 * time.Millisecond,
		MaxBackoff:     2 * time.Second,
		Seed:           o.seed + int64(o.index),
	})
	go f.Run()

	start := w.NextSeq()
	obs.Logf(obs.Info, "rexfleet", "collector %s: %d events, journal at seq %d", id, len(mine), start)
	appendDone := make(chan error, 1)
	go func() {
		for i := start; i < uint64(len(mine)); i++ {
			if _, err := w.Append(&mine[i]); err != nil {
				appendDone <- err
				return
			}
			if o.throttle > 0 {
				time.Sleep(o.throttle)
			}
		}
		appendDone <- nil
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	trim := time.NewTicker(time.Second)
	defer trim.Stop()
	for {
		select {
		case <-sig:
			// The supervisor is done with us. The journal stays as-is:
			// a restart (or a post-mortem) picks up from disk.
			f.Close()
			return nil
		case err := <-appendDone:
			if err != nil {
				f.Close()
				return fmt.Errorf("append: %w", err)
			}
			appendDone = nil // keep serving the tail until told to stop
		case <-trim.C:
			// The receiver's ack is the durable cursor: everything below
			// it can go. TrimTo never touches the active segment, so the
			// tail the feed is still serving survives.
			if _, err := w.TrimTo(f.Acked()); err != nil {
				obs.Logf(obs.Warn, "rexfleet", "collector %s: trim: %v", id, err)
			}
		}
	}
}

// childCommand builds the subprocess for one collector; tests override
// it to re-exec the test binary.
var childCommand = func(args []string) *exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	return exec.Command(exe, args...)
}

// fleet tracks the collector subprocesses.
type fleet struct {
	mu    sync.Mutex
	procs []*exec.Cmd
	spawn func(i int) *exec.Cmd
}

func (fl *fleet) respawn(i int) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	fl.procs[i] = fl.spawn(i)
}

// kill SIGKILLs collector i and reaps it; the caller respawns.
func (fl *fleet) kill(i int) {
	fl.mu.Lock()
	cmd := fl.procs[i]
	fl.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Kill()
	cmd.Wait()
}

// stopAll SIGTERMs every collector and reaps them, escalating to
// SIGKILL after a grace period.
func (fl *fleet) stopAll() {
	fl.mu.Lock()
	procs := append([]*exec.Cmd(nil), fl.procs...)
	fl.mu.Unlock()
	for _, cmd := range procs {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	for _, cmd := range procs {
		if cmd == nil || cmd.Process == nil {
			continue
		}
		done := make(chan struct{})
		go func(c *exec.Cmd) { c.Wait(); close(done) }(cmd)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
}

// fleetRoot resolves -dir, creating (and scheduling removal of) a temp
// root when unset. cleanup is a no-op for a user-supplied dir.
func fleetRoot(o fleetOpts) (root string, cleanup func(), err error) {
	if o.dir != "" {
		return o.dir, func() {}, os.MkdirAll(o.dir, 0o755)
	}
	if root, err = os.MkdirTemp("", "rexfleet-"); err != nil {
		return "", nil, err
	}
	return root, func() { os.RemoveAll(root) }, nil
}

// readTimeoutFor sizes the receiver's per-frame read deadline off the
// heartbeat cadence, floored so slow test machines don't flap feeds.
func readTimeoutFor(o fleetOpts) time.Duration {
	rt := 4 * o.heartbeat
	if rt < 500*time.Millisecond {
		rt = 500 * time.Millisecond
	}
	return rt
}

// startCollectors spawns the collector fleet pointed at addr.
func startCollectors(o fleetOpts, root, addr string) *fleet {
	fl := &fleet{procs: make([]*exec.Cmd, o.feeds)}
	fl.spawn = func(i int) *exec.Cmd {
		cmd := childCommand([]string{
			"-role=collector",
			fmt.Sprintf("-index=%d", i),
			"-addr=" + addr,
			"-journal-dir=" + filepath.Join(root, feedID(i)),
			fmt.Sprintf("-feeds=%d", o.feeds),
			fmt.Sprintf("-events=%d", o.events),
			"-span=" + o.span.String(),
			fmt.Sprintf("-seed=%d", o.seed),
			"-throttle=" + o.throttle.String(),
			"-heartbeat=" + o.heartbeat.String(),
			"-fsync=" + o.fsync,
			"-log-level=" + o.logLevel,
		})
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			obs.Logf(obs.Error, "rexfleet", "spawn collector %d: %v", i, err)
			return nil
		}
		return cmd
	}
	for i := 0; i < o.feeds; i++ {
		fl.respawn(i)
	}
	return fl
}

// chaos is one SIGKILL loop; halt stops it and reports the hit count.
type chaos struct {
	stop chan struct{}
	wg   sync.WaitGroup
	hits int
}

// startChaos calls hit every period until halt; period <= 0 starts
// nothing but still supports halt.
func startChaos(period time.Duration, hit func()) *chaos {
	c := &chaos{stop: make(chan struct{})}
	if period <= 0 {
		return c
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				hit()
				c.hits++
			}
		}
	}()
	return c
}

func (c *chaos) halt() int {
	close(c.stop)
	c.wg.Wait()
	return c.hits
}

// runSupervisor is the parent role: receiver + pipeline in-process,
// collectors as children, optional kill loop, and the final check.
func runSupervisor(o fleetOpts) error {
	parts := substreams(o)
	ids := make([]string, o.feeds)
	for i := range ids {
		ids[i] = feedID(i)
	}

	root, cleanup, err := fleetRoot(o)
	if err != nil {
		return err
	}
	defer cleanup()

	p := pipeline.New(analysisConfig(o))
	rcv := relay.NewReceiver(relay.ReceiverConfig{
		Pipeline:    p,
		ExpectFeeds: ids,
		StaleAfter:  o.staleAfter,
		ReadTimeout: readTimeoutFor(o),
	})
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	go rcv.Serve(ln)
	obs.Logf(obs.Info, "rexfleet", "receiver on %s, %d collectors, %d events", ln.Addr(), o.feeds, o.events)

	var snaps []pipeline.Snapshot
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for s := range rcv.Snapshots() {
			snaps = append(snaps, s.Snapshot)
			stale := 0
			for _, fs := range s.Feeds {
				if fs.Stale {
					stale++
				}
			}
			obs.Logf(obs.Info, "rexfleet", "snapshot %s: %d events in window, %d component(s), %d/%d feeds stale",
				s.At.Format(time.RFC3339), s.Events, len(s.Components), stale, len(s.Feeds))
		}
	}()

	fl := startCollectors(o, root, ln.Addr().String())
	victim := 0
	cc := startChaos(o.killEvery, func() {
		obs.Logf(obs.Info, "rexfleet", "chaos: SIGKILL collector %d", victim)
		fl.kill(victim)
		fl.respawn(victim)
		victim = (victim + 1) % o.feeds
	})

	// Completion: the receiver's per-feed cursor reaching each feed's
	// event count means every event has been delivered exactly once.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	deadline := time.Now().Add(o.timeout)
	var runErr error
poll:
	for {
		complete := true
		st := rcv.Statuses()
		for i, id := range ids {
			if st[i].NextSeq < uint64(len(parts[id])) {
				complete = false
				break
			}
		}
		if complete {
			break
		}
		if time.Now().After(deadline) {
			runErr = fmt.Errorf("fleet incomplete after %s", o.timeout)
			break
		}
		select {
		case <-sig:
			runErr = fmt.Errorf("interrupted")
			break poll
		case <-time.After(50 * time.Millisecond):
		}
	}

	kills := cc.halt()
	fl.stopAll()
	rcv.Close()
	<-drained

	for _, st := range rcv.Statuses() {
		obs.Logf(obs.Info, "rexfleet", "feed %s: received %d, duplicates %d, cursor %d",
			st.ID, st.Received, st.Duplicates, st.NextSeq)
	}
	if kills > 0 {
		obs.Logf(obs.Info, "rexfleet", "chaos delivered %d SIGKILLs", kills)
	}
	if runErr != nil {
		return runErr
	}

	if o.check {
		want := pipeline.RenderSnapshots(pipeline.Replay(relay.MergeStreams(parts), analysisConfig(o)))
		got := pipeline.RenderSnapshots(snaps)
		if got != want {
			return fmt.Errorf("fleet output DIVERGED from the single-process replay (%d vs %d rendered bytes)", len(got), len(want))
		}
		obs.Logf(obs.Info, "rexfleet", "check: %d snapshots byte-identical to the single-process replay", len(snaps))
	}
	return nil
}
