// The subprocess analysis node and its supervisor side. With
// -node-kill-every the receiver no longer runs inside the supervisor:
// it becomes a durable child of its own (-role=node, journaling and
// checkpointing under the fleet root) so the chaos loop can SIGKILL and
// respawn it like any collector. Two sidecar files make that safe to
// supervise from outside the process:
//
//   - <dir>/node.frames — every snapshot the node emits, rendered alone
//     and appended as a length-prefixed frame, with a zero-length marker
//     frame at each process start. The receiver's SnapshotSink writes
//     frames synchronously and its checkpoints wait for the sink, so a
//     SIGKILL can only lose snapshots no checkpoint covered — which the
//     next incarnation re-emits, byte-identically, once the feeds resend
//     the truncated journal tail. The supervisor stitches the
//     per-incarnation segments on their overlap to recover the exact
//     uninterrupted snapshot sequence.
//
//   - <dir>/node.status — per-feed cursors, rewritten atomically on a
//     short cadence. Completion is judged from the DURABLE cursor: it
//     only advances when a checkpoint lands, so even a status file that
//     is stale because the node just died can claim at most what some
//     checkpoint already made crash-proof.
package main

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/journal"
	"rex/internal/obs"
	"rex/internal/relay"
)

func framesPath(jdir string) string { return jdir + ".frames" }
func statusPath(jdir string) string { return jdir + ".status" }

// runNode is the analysis-node child role: a durable relay receiver on
// the supervisor-chosen -addr, persisting snapshots and cursors for the
// supervisor to read across SIGKILLs.
func runNode(o fleetOpts) error {
	if o.addr == "" || o.jdir == "" {
		return fmt.Errorf("node role needs -addr and -journal-dir")
	}
	pol, err := journal.ParseFsyncPolicy(o.fsync)
	if err != nil {
		return fmt.Errorf("bad -fsync: %w", err)
	}
	ids := make([]string, o.feeds)
	for i := range ids {
		ids[i] = feedID(i)
	}

	// Subscribe before recovery: a SIGTERM landing while the journal is
	// still replaying must queue for the graceful close, not kill us.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	if err := os.MkdirAll(o.jdir, 0o755); err != nil {
		return err
	}
	fr, err := openFrames(framesPath(o.jdir))
	if err != nil {
		return err
	}
	rcv, err := relay.OpenReceiver(relay.ReceiverConfig{
		Pipeline:        pipeline.New(analysisConfig(o)),
		ExpectFeeds:     ids,
		StaleAfter:      o.staleAfter,
		ReadTimeout:     readTimeoutFor(o),
		Dir:             o.jdir,
		Fsync:           pol,
		CheckpointEvery: o.ckptEvery,
		Window:          o.window,
		SnapshotSink: func(s relay.Snapshot) {
			if err := fr.append(pipeline.RenderSnapshots([]pipeline.Snapshot{s.Snapshot})); err != nil {
				obs.Logf(obs.Error, "rexfleet", "node: frame append: %v", err)
			}
		},
	})
	if err != nil {
		return fmt.Errorf("node recovery: %w", err)
	}
	if stats, ok := rcv.RecoveryStats(); ok {
		obs.Logf(obs.Info, "rexfleet", "node recovered: checkpoint=%v, %d routes, %d replayed, %d orphans dropped, resume seq %d",
			stats.HadCheckpoint, stats.RestoredRoutes, stats.Replayed, stats.Truncated, stats.ResumeSeq)
	}

	// A respawned node must rebind the exact address its predecessor
	// held; retry briefly while the dead process's socket drains.
	var ln net.Listener
	for deadline := time.Now().Add(10 * time.Second); ; {
		if ln, err = net.Listen("tcp", o.addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("node listen: %w", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	go rcv.Serve(ln)
	obs.Logf(obs.Info, "rexfleet", "analysis node on %s (%d feeds)", o.addr, o.feeds)

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for s := range rcv.Snapshots() {
			obs.Logf(obs.Info, "rexfleet", "snapshot %s: %d events in window, %d component(s)",
				s.At.Format(time.RFC3339), s.Events, len(s.Components))
		}
	}()

	statusT := time.NewTicker(100 * time.Millisecond)
	defer statusT.Stop()
	for done := false; !done; {
		select {
		case <-sig:
			done = true
		case <-statusT.C:
			writeNodeStatus(statusPath(o.jdir), rcv.Statuses())
		}
	}
	rcv.Close() // flush, final checkpoint, final snapshot through the sink
	<-drained
	writeNodeStatus(statusPath(o.jdir), rcv.Statuses())
	return fr.close()
}

// framesFile appends length-prefixed snapshot renders. Each frame goes
// out in a single write, so a SIGKILL tears at most the file's tail,
// never the middle; openFrames truncates that torn tail away before the
// next incarnation appends.
type framesFile struct{ f *os.File }

func openFrames(path string) (*framesFile, error) {
	if data, err := os.ReadFile(path); err == nil {
		if good := framePrefixLen(data); good < len(data) {
			if err := os.Truncate(path, int64(good)); err != nil {
				return nil, err
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fr := &framesFile{f: f}
	if err := fr.append(""); err != nil { // zero-length incarnation marker
		f.Close()
		return nil, err
	}
	return fr, nil
}

func (fr *framesFile) append(payload string) error {
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := fr.f.Write(buf)
	return err
}

func (fr *framesFile) close() error { return fr.f.Close() }

// framePrefixLen returns the length of the longest valid frame prefix.
func framePrefixLen(b []byte) int {
	off := 0
	for off+4 <= len(b) {
		n := int(binary.BigEndian.Uint32(b[off:]))
		if off+4+n > len(b) {
			break
		}
		off += 4 + n
	}
	return off
}

// readFrames parses the sidecar into one segment of snapshot renders
// per node incarnation, ignoring a torn tail.
func readFrames(path string) ([][]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var segs [][]string
	var cur []string
	for off := 0; off+4 <= len(data); {
		n := int(binary.BigEndian.Uint32(data[off:]))
		if off+4+n > len(data) {
			break
		}
		if n == 0 { // marker: a new incarnation begins
			if len(cur) > 0 {
				segs = append(segs, cur)
			}
			cur = nil
		} else {
			cur = append(cur, string(data[off+4:off+4+n]))
		}
		off += 4 + n
	}
	if len(cur) > 0 {
		segs = append(segs, cur)
	}
	return segs, nil
}

// renderEach renders every snapshot alone: RenderSnapshots numbers its
// input with a running index, so only per-snapshot renders compare
// across incarnation boundaries.
func renderEach(snaps []pipeline.Snapshot) []string {
	out := make([]string, len(snaps))
	for i := range snaps {
		out[i] = pipeline.RenderSnapshots(snaps[i : i+1])
	}
	return out
}

// stitchSegments folds per-incarnation segments into one sequence. A
// restarted node re-emits the snapshots after its recovery checkpoint
// byte-identically (same merged stream, same restored trigger state),
// so each segment's overlap with the tail of the stitched prefix is
// exactly the re-emission to drop.
func stitchSegments(segs [][]string) []string {
	var out []string
	for _, seg := range segs {
		out = stitch(out, seg)
	}
	return out
}

func stitch(a, b []string) []string {
	max := len(a)
	if len(b) < max {
		max = len(b)
	}
	for k := max; k > 0; k-- {
		match := true
		for i := 0; i < k; i++ {
			if a[len(a)-k+i] != b[i] {
				match = false
				break
			}
		}
		if match {
			return append(a, b[k:]...)
		}
	}
	return append(a, b...)
}

// writeNodeStatus atomically publishes per-feed cursors for the
// supervisor's completion poll. The pid line lets the supervisor tell a
// live report from a leftover written by a since-killed incarnation.
func writeNodeStatus(path string, sts []relay.FeedStatus) {
	var b strings.Builder
	fmt.Fprintf(&b, "pid %d\n", os.Getpid())
	for _, st := range sts {
		fmt.Fprintf(&b, "%s %d %d %d %d\n", st.ID, st.Durable, st.NextSeq, st.Received, st.Duplicates)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		obs.Logf(obs.Warn, "rexfleet", "node status: %v", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		obs.Logf(obs.Warn, "rexfleet", "node status: %v", err)
	}
}

type nodeStatus struct {
	id                            string
	durable, next, received, dups uint64
}

// readNodeStatus parses the status file; a missing or torn file is
// simply "no progress visible yet".
func readNodeStatus(path string) (pid int, out []nodeStatus) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if strings.HasPrefix(line, "pid ") {
			fmt.Sscanf(line, "pid %d", &pid)
			continue
		}
		var st nodeStatus
		if _, err := fmt.Sscanf(line, "%s %d %d %d %d", &st.id, &st.durable, &st.next, &st.received, &st.dups); err == nil {
			out = append(out, st)
		}
	}
	return pid, out
}

// nodeHandle tracks the analysis-node subprocess.
type nodeHandle struct {
	mu    sync.Mutex
	cmd   *exec.Cmd
	spawn func() *exec.Cmd
}

func (n *nodeHandle) respawn() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cmd = n.spawn()
}

// pid of the current incarnation, 0 if none is running.
func (n *nodeHandle) pid() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cmd == nil || n.cmd.Process == nil {
		return 0
	}
	return n.cmd.Process.Pid
}

// kill SIGKILLs the node and reaps it; the caller respawns.
func (n *nodeHandle) kill() {
	n.mu.Lock()
	cmd := n.cmd
	n.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Kill()
	cmd.Wait()
}

// stop SIGTERMs the node and waits for the graceful close that writes
// the final snapshot frame. Escalating to SIGKILL is an error — the
// recorded output is incomplete without that frame.
func (n *nodeHandle) stop(grace time.Duration) error {
	n.mu.Lock()
	cmd := n.cmd
	n.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("analysis node is not running")
	}
	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("analysis node exit: %w", err)
		}
		return nil
	case <-time.After(grace):
		cmd.Process.Kill()
		<-done
		return fmt.Errorf("analysis node did not exit within %s of SIGTERM", grace)
	}
}

// runSupervisorNode is the subprocess-node variant of the supervisor:
// collectors AND the analysis node are children, both under chaos.
func runSupervisorNode(o fleetOpts) error {
	parts := substreams(o)
	ids := make([]string, o.feeds)
	for i := range ids {
		ids[i] = feedID(i)
	}
	root, cleanup, err := fleetRoot(o)
	if err != nil {
		return err
	}
	defer cleanup()

	// Bind once to resolve ":0", then hand the concrete address to the
	// node: every respawn must come back on the same one.
	probe, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	addr := probe.Addr().String()
	probe.Close()

	nodeDir := filepath.Join(root, "node")
	node := &nodeHandle{}
	node.spawn = func() *exec.Cmd {
		cmd := childCommand([]string{
			"-role=node",
			"-addr=" + addr,
			"-journal-dir=" + nodeDir,
			fmt.Sprintf("-feeds=%d", o.feeds),
			"-window=" + o.window.String(),
			"-snapshot-every=" + o.snapEvery.String(),
			"-stale-after=" + o.staleAfter.String(),
			"-heartbeat=" + o.heartbeat.String(),
			"-fsync=" + o.fsync,
			"-checkpoint-every=" + o.ckptEvery.String(),
			"-log-level=" + o.logLevel,
		})
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			obs.Logf(obs.Error, "rexfleet", "spawn node: %v", err)
			return nil
		}
		return cmd
	}
	node.respawn()
	obs.Logf(obs.Info, "rexfleet", "analysis node subprocess on %s, %d collectors, %d events", addr, o.feeds, o.events)
	fl := startCollectors(o, root, addr)

	victim := 0
	cc := startChaos(o.killEvery, func() {
		obs.Logf(obs.Info, "rexfleet", "chaos: SIGKILL collector %d", victim)
		fl.kill(victim)
		fl.respawn(victim)
		victim = (victim + 1) % o.feeds
	})
	nc := startChaos(o.nodeKillEvery, func() {
		obs.Logf(obs.Info, "rexfleet", "chaos: SIGKILL analysis node")
		node.kill()
		node.respawn()
	})

	// Completion: the CURRENT node incarnation (the status pid guard
	// rejects a leftover file from a killed predecessor) reports every
	// feed's live cursor at its event count. Trailing events sit gated
	// in the merge until the node's graceful close force-flushes them,
	// so the durable cursor cannot be the signal here — live receipt
	// plus a SIGTERM while no more kills can land is what guarantees
	// the full stream reaches the output.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	deadline := time.Now().Add(o.timeout)
	pollComplete := func() error {
		for {
			pid, sts := readNodeStatus(statusPath(nodeDir))
			if pid != 0 && pid == node.pid() {
				next := map[string]uint64{}
				for _, st := range sts {
					next[st.id] = st.next
				}
				complete := true
				for _, id := range ids {
					if next[id] < uint64(len(parts[id])) {
						complete = false
						break
					}
				}
				if complete {
					return nil
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("fleet incomplete after %s", o.timeout)
			}
			select {
			case <-sig:
				return fmt.Errorf("interrupted")
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
	runErr := pollComplete()

	kills := cc.halt()
	nodeKills := nc.halt()
	if runErr == nil {
		// A kill may have raced the completion observation, rolling
		// receipt back to the durable floor. With the chaos quiet, wait
		// for the surviving incarnation to re-earn completion (the
		// feeds resend the lost tail) before asking it to flush.
		runErr = pollComplete()
	}
	// Stop the node before the collectors: its graceful close flushes
	// the gated tail, checkpoints, and writes the final snapshot frame,
	// none of which needs the feeds anymore.
	if err := node.stop(30 * time.Second); err != nil && runErr == nil {
		runErr = err
	}
	fl.stopAll()

	_, finalSts := readNodeStatus(statusPath(nodeDir))
	for _, st := range finalSts {
		obs.Logf(obs.Info, "rexfleet", "feed %s: received %d, duplicates %d, durable cursor %d",
			st.id, st.received, st.dups, st.durable)
	}
	obs.Logf(obs.Info, "rexfleet", "chaos delivered %d collector and %d node SIGKILLs", kills, nodeKills)
	if runErr != nil {
		return runErr
	}

	if o.check {
		segs, err := readFrames(framesPath(nodeDir))
		if err != nil {
			return fmt.Errorf("read snapshot frames: %w", err)
		}
		got := stitchSegments(segs)
		want := renderEach(pipeline.Replay(relay.MergeStreams(parts), analysisConfig(o)))
		if len(got) != len(want) {
			return fmt.Errorf("fleet output DIVERGED: %d stitched snapshots vs %d in the single-process replay (%d node incarnation(s))",
				len(got), len(want), len(segs))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("fleet output DIVERGED at snapshot %d of %d (%d node incarnation(s))", i, len(want), len(segs))
			}
		}
		obs.Logf(obs.Info, "rexfleet", "check: %d snapshots byte-identical across %d node incarnation(s)", len(got), len(segs))
	}
	return nil
}
