// Command benchjson is the benchmark regression harness behind
// `make bench`: it runs the streaming-pipeline benchmarks
// (BenchmarkPipelineWindow and BenchmarkParallelWindow, plus
// BenchmarkReplayAt for the time-travel replay latency) and distills the
// `go test -bench` output into a stable JSON file — ns/op, events/sec
// and allocs/op per benchmark — so successive PRs can diff throughput
// without re-parsing bench text. The format is documented in
// EXPERIMENTS.md.
//
// With -compare OLD.json (`make bench-check`) it instead diffs the
// fresh run against a committed baseline and exits non-zero when
// allocs/op grew or events/sec shrank beyond the thresholds — the CI
// smoke that keeps the allocation diet from silently regressing.
// Allocation counts are deterministic, so their threshold is tight;
// events/sec on shared runners is noisy, so its threshold is
// deliberately loose and only catches collapses.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line, distilled.
type Result struct {
	Name         string  `json:"name"`
	Iterations   int64   `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
}

// File is the top-level BENCH_pr6.json document.
type File struct {
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	Benchtime  string             `json:"benchtime"`
	Benchmarks []Result           `json:"benchmarks"`
	Speedups   map[string]float64 `json:"parallel_speedup_vs_workers_1,omitempty"`
}

func main() {
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	pattern := flag.String("bench", "^(BenchmarkPipelineWindow|BenchmarkParallelWindow|BenchmarkReplayAt)$", "benchmark regexp")
	out := flag.String("out", "BENCH_pr6.json", "output JSON path")
	compare := flag.String("compare", "", "baseline JSON to diff against instead of writing (exit 1 on regression)")
	maxAllocRatio := flag.Float64("max-alloc-ratio", 1.25, "compare: fail when allocs/op exceeds baseline by this factor")
	minEventsRatio := flag.Float64("min-events-ratio", 0.5, "compare: fail when events/sec falls below this fraction of baseline")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *pattern, "-benchmem", "-benchtime", *benchtime, "-cpu", strconv.Itoa(runtime.NumCPU()), ".")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test -bench failed: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(raw)

	doc := File{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benchtime: *benchtime,
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	doc.Speedups = speedups(doc.Benchmarks)

	if *compare != "" {
		os.Exit(compareAgainst(*compare, doc.Benchmarks, *maxAllocRatio, *minEventsRatio))
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// compareAgainst diffs fresh results against the committed baseline
// file and returns the process exit code: 0 when every matching
// benchmark is within thresholds, 1 on any regression. Benchmarks
// present on only one side are reported but do not fail the run — the
// benchmark set may legitimately change between PRs.
func compareAgainst(path string, fresh []Result, maxAllocRatio, minEventsRatio float64) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read baseline: %v\n", err)
		return 1
	}
	var base File
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parse baseline %s: %v\n", path, err)
		return 1
	}
	old := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		old[r.Name] = r
	}
	regressions := 0
	matched := 0
	for _, r := range fresh {
		b, ok := old[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s: not in baseline, skipped\n", r.Name)
			continue
		}
		matched++
		delete(old, r.Name)
		if b.AllocsPerOp > 0 && r.AllocsPerOp > b.AllocsPerOp*maxAllocRatio {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: allocs/op %.0f vs baseline %.0f (limit %.2fx)\n",
				r.Name, r.AllocsPerOp, b.AllocsPerOp, maxAllocRatio)
			regressions++
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: ok %s: allocs/op %.0f vs baseline %.0f\n",
				r.Name, r.AllocsPerOp, b.AllocsPerOp)
		}
		if b.EventsPerSec > 0 && r.EventsPerSec < b.EventsPerSec*minEventsRatio {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: events/sec %.0f vs baseline %.0f (floor %.2fx)\n",
				r.Name, r.EventsPerSec, b.EventsPerSec, minEventsRatio)
			regressions++
		}
	}
	for name := range old {
		fmt.Fprintf(os.Stderr, "benchjson: %s: in baseline but not in this run\n", name)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks matched the baseline — nothing was checked")
		return 1
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) vs %s\n", regressions, path)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) within thresholds of %s\n", matched, path)
	return 0
}

// parseLine handles one `go test -bench` result line: the name and
// iteration count, then (value, unit) pairs.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: trimCPUSuffix(fields[0]), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "events":
			r.EventsPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		}
	}
	if r.NsPerOp > 0 && r.EventsPerOp > 0 {
		r.EventsPerSec = r.EventsPerOp / r.NsPerOp * 1e9
	}
	return r, true
}

// trimCPUSuffix drops go test's "-N" GOMAXPROCS suffix so names are
// stable across machines.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// speedups reports each BenchmarkParallelWindow variant's events/sec
// relative to the workers=1 run on the same stream.
func speedups(rs []Result) map[string]float64 {
	var base float64
	for _, r := range rs {
		if r.Name == "BenchmarkParallelWindow/workers=1" {
			base = r.EventsPerSec
		}
	}
	if base == 0 {
		return nil
	}
	out := map[string]float64{}
	for _, r := range rs {
		if strings.HasPrefix(r.Name, "BenchmarkParallelWindow/workers=") && r.EventsPerSec > 0 {
			out[strings.TrimPrefix(r.Name, "BenchmarkParallelWindow/")] = r.EventsPerSec / base
		}
	}
	return out
}
