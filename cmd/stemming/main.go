// Command stemming runs the Stemming anomaly-detection algorithm over an
// event stream file (text, binary, or MRT updates) and reports the
// strongly correlated components it finds, strongest first. With -rate it
// also prints the Figure-8-style event-rate chart and detected spikes.
//
// Examples:
//
//	stemming -in spike.events
//	stemming -in updates.mrt -max 3
//	stemming -in week.evb -rate -bucket 1m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rex/internal/core/stemming"
	"rex/internal/event"
	"rex/internal/streamfile"
	"rex/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stemming:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stemming", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "event stream file (text/.evb/.mrt)")
		max      = fs.Int("max", 8, "maximum components to extract")
		minScore = fs.Float64("min-score", 0, "minimum component score (default 2)")
		showRate = fs.Bool("rate", false, "print the event-rate chart and spikes")
		bucket   = fs.Duration("bucket", time.Minute, "rate bucket width")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	s, err := streamfile.ReadEvents(*in)
	if err != nil {
		return err
	}
	first, last, ok := s.TimeRange()
	if !ok {
		return fmt.Errorf("%s: no events", *in)
	}
	fmt.Printf("%d events, %v .. %v (%v)\n", len(s), first.Format(time.RFC3339), last.Format(time.RFC3339), last.Sub(first))

	if *showRate {
		rs := event.Rate(s, *bucket)
		fmt.Printf("\nevent rate (bucket %v, grass %.0f/bucket):\n", *bucket, rs.Grass())
		fmt.Print(viz.RateASCII(rs.Counts, 10))
		for _, sp := range rs.Spikes(8) {
			fmt.Printf("spike: %v .. %v, %d events (peak %d/bucket)\n",
				sp.Start.Format(time.RFC3339), sp.End.Format(time.RFC3339), sp.Total, sp.Peak)
		}
	}

	comps := stemming.Analyze(s, stemming.Config{MaxComponents: *max, MinScore: *minScore})
	if len(comps) == 0 {
		fmt.Println("\nno strongly correlated components")
		return nil
	}
	fmt.Printf("\n%d component(s):\n", len(comps))
	for i, c := range comps {
		fmt.Printf("\n#%d  stem %v  (score %.0f, %d matching sequences)\n", i+1, c.Stem, c.Score, c.Count)
		fmt.Printf("    subsequence:")
		for _, tok := range c.Subsequence {
			fmt.Printf(" %v", tok)
		}
		fmt.Println()
		fmt.Printf("    %d events on %d prefixes, %v .. %v\n",
			c.NumEvents(), len(c.Prefixes), c.First.Format(time.RFC3339), c.Last.Format(time.RFC3339))
		limit := len(c.Prefixes)
		if limit > 8 {
			limit = 8
		}
		fmt.Printf("    prefixes:")
		for _, p := range c.Prefixes[:limit] {
			fmt.Printf(" %v", p)
		}
		if len(c.Prefixes) > limit {
			fmt.Printf(" … (+%d)", len(c.Prefixes)-limit)
		}
		fmt.Println()
	}
	return nil
}
