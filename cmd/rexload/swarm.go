// Swarm engine for rexload: N pollers rotating over the serving tier's
// data endpoints plus M SSE subscribers, all against one base URL, with
// every outcome counted and latencies in a fixed-bucket histogram. The
// engine is context-driven and has no opinions about chaos — the CLI
// (and the soak test) inject kills around it and read the report after.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	neturl "net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// pollEndpoints is the rotation every poller walks; the mix mirrors a
// dashboard: mostly the cheap JSON, with picture renders in the blend
// so the single-flight cache is actually exercised per format.
var pollEndpoints = []string{
	"/api/snapshot",
	"/api/picture.svg",
	"/api/components",
	"/api/picture.json",
	"/api/snapshot",
	"/api/prefix/1.0.0.0/24",
}

// atEndpoints is the time-travel rotation the -at pollers walk; every
// format so the per-instant render cache is exercised like the live one.
var atEndpoints = []string{
	"/api/at",
	"/api/at/components",
	"/api/at/picture.svg",
	"/api/at/picture.json",
	"/api/at/picture.dot",
}

// latencyHist is a lock-free log-bucketed latency histogram:
// 64 buckets, exponentially spaced from 50µs to ~60s.
type latencyHist struct {
	counts [64]atomic.Uint64
}

const (
	histMin   = 50e-6 // seconds
	histRatio = 1.245 // histMin * histRatio^63 ≈ 60s
)

func (h *latencyHist) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	if s > histMin {
		i = int(math.Log(s/histMin) / math.Log(histRatio))
		if i > 63 {
			i = 63
		}
	}
	h.counts[i].Add(1)
}

// quantile returns the upper bound of the bucket holding quantile q.
func (h *latencyHist) quantile(q float64) time.Duration {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > target {
			return time.Duration(histMin * math.Pow(histRatio, float64(i+1)) * float64(time.Second))
		}
	}
	return time.Duration(histMin * math.Pow(histRatio, 64) * float64(time.Second))
}

// render prints the non-empty buckets as an ASCII bar chart.
func (h *latencyHist) render(w io.Writer) {
	var max uint64
	for i := range h.counts {
		if c := h.counts[i].Load(); c > max {
			max = c
		}
	}
	if max == 0 {
		return
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		hi := time.Duration(histMin * math.Pow(histRatio, float64(i+1)) * float64(time.Second))
		bar := strings.Repeat("#", 1+int(40*c/max))
		fmt.Fprintf(w, "  <%-10s %8d %s\n", hi.Round(time.Microsecond), c, bar)
	}
}

type swarmConfig struct {
	base      string // http://host:port
	pollers   int
	subs      int
	atPollers int           // time-travel pollers hitting /api/at
	atSpread  time.Duration // how far behind the live head -at instants reach
	duration  time.Duration
	pollEvery time.Duration // per-poller think time between requests
	timeout   time.Duration // per-request client timeout
}

// swarmReport is everything the swarm observed. Counter semantics: a
// request lands in exactly one of ok200/notModified/shed429/clientErr/
// server5xx/netErr; staleReads additionally counts ok200 responses
// carrying X-Rex-Stale: true.
type swarmReport struct {
	requests    atomic.Uint64
	ok200       atomic.Uint64
	notModified atomic.Uint64
	shed429     atomic.Uint64
	clientErr   atomic.Uint64 // 4xx other than 429
	server5xx   atomic.Uint64
	netErr      atomic.Uint64 // dial/read failures (target down mid-chaos)
	staleReads  atomic.Uint64
	readyFlips  atomic.Uint64 // /readyz 503→200 transitions observed

	atOk       atomic.Uint64 // time-travel 200s (also counted in ok200)
	atDegraded atomic.Uint64 // explicit 416/422 replay outcomes — not errors

	sseEvents  atomic.Uint64
	sseResyncs atomic.Uint64
	sseByes    atomic.Uint64
	sseDials   atomic.Uint64

	hist latencyHist
}

func (r *swarmReport) print(w io.Writer) {
	fmt.Fprintf(w, "rexload: %d requests: %d ok (%d stale), %d not-modified, %d shed(429), %d client-err, %d server-5xx, %d net-err\n",
		r.requests.Load(), r.ok200.Load(), r.staleReads.Load(), r.notModified.Load(),
		r.shed429.Load(), r.clientErr.Load(), r.server5xx.Load(), r.netErr.Load())
	fmt.Fprintf(w, "rexload: sse: %d dials, %d events, %d resyncs, %d byes\n",
		r.sseDials.Load(), r.sseEvents.Load(), r.sseResyncs.Load(), r.sseByes.Load())
	if r.atOk.Load()+r.atDegraded.Load() > 0 {
		fmt.Fprintf(w, "rexload: time-travel: %d ok, %d degraded (explicit 416/422)\n",
			r.atOk.Load(), r.atDegraded.Load())
	}
	fmt.Fprintf(w, "rexload: latency p50=%s p90=%s p99=%s\n",
		r.hist.quantile(0.50).Round(time.Microsecond),
		r.hist.quantile(0.90).Round(time.Microsecond),
		r.hist.quantile(0.99).Round(time.Microsecond))
	r.hist.render(w)
}

// runSwarm drives the full swarm until cfg.duration elapses (or ctx is
// canceled) and returns the observations. Reused verbatim by the soak
// test, which wraps chaos around it.
func runSwarm(ctx context.Context, cfg swarmConfig) *swarmReport {
	if cfg.pollEvery <= 0 {
		cfg.pollEvery = 10 * time.Millisecond
	}
	if cfg.timeout <= 0 {
		cfg.timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()

	rep := &swarmReport{}
	// One shared transport: the swarm should exercise the server's
	// admission control, not exhaust client-side ephemeral ports.
	tr := &http.Transport{
		MaxIdleConns:        cfg.pollers + cfg.subs,
		MaxIdleConnsPerHost: cfg.pollers + cfg.subs,
		IdleConnTimeout:     30 * time.Second,
	}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr, Timeout: cfg.timeout}

	var wg sync.WaitGroup
	for i := 0; i < cfg.pollers; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			poller(ctx, client, cfg.base, n, rep, cfg.pollEvery)
		}(i)
	}
	for i := 0; i < cfg.atPollers; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			atPoller(ctx, client, cfg.base, n, rep, cfg.pollEvery, cfg.atSpread)
		}(i)
	}
	// SSE clients use a client without an overall timeout: the stream is
	// supposed to outlive any per-request deadline.
	sseClient := &http.Client{Transport: tr}
	for i := 0; i < cfg.subs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			subscriber(ctx, sseClient, cfg.base, rep)
		}()
	}
	wg.Wait()
	return rep
}

// poller loops one synthetic dashboard reader: rotate endpoints, track
// readiness transitions, classify every outcome.
func poller(ctx context.Context, client *http.Client, base string, n int, rep *swarmReport, every time.Duration) {
	wasReady := true
	for j := n; ; j++ {
		select {
		case <-ctx.Done():
			return
		default:
		}
		url := base + pollEndpoints[j%len(pollEndpoints)]
		if j%16 == 15 {
			url = base + "/readyz"
		}
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
		if err != nil {
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			rep.requests.Add(1)
			rep.netErr.Add(1)
			time.Sleep(every)
			continue
		}
		_, readErr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		rep.requests.Add(1)
		rep.hist.observe(time.Since(start))
		if strings.HasSuffix(url, "/readyz") {
			ready := resp.StatusCode == 200
			if ready && !wasReady {
				rep.readyFlips.Add(1)
			}
			wasReady = ready
			time.Sleep(every)
			continue
		}
		switch {
		case readErr != nil:
			rep.netErr.Add(1)
		case resp.StatusCode == 200:
			rep.ok200.Add(1)
			if resp.Header.Get("X-Rex-Stale") == "true" {
				rep.staleReads.Add(1)
			}
		case resp.StatusCode == http.StatusNotModified:
			rep.notModified.Add(1)
		case resp.StatusCode == http.StatusTooManyRequests:
			rep.shed429.Add(1)
		case resp.StatusCode >= 500:
			rep.server5xx.Add(1)
		default:
			rep.clientErr.Add(1)
		}
		time.Sleep(every)
	}
}

// atFractions spreads the time-travel instants across the lookback
// range: mostly near the live head (cache-friendly, like a dashboard
// scrubbing recent history) with a tail reaching the full spread.
var atFractions = []float64{0, 0.015, 0.0625, 0.25, 1}

// atPoller loops one synthetic forensic reader: anchor on the live
// snapshot's event time, then rotate the /api/at endpoints over instants
// behind it. 416/422 are explicit degraded outcomes, never failures —
// only a 5xx counts against the tier.
func atPoller(ctx context.Context, client *http.Client, base string, n int, rep *swarmReport, every, spread time.Duration) {
	if spread <= 0 {
		spread = 2 * time.Minute
	}
	var anchor time.Time
	for j := n; ; j++ {
		select {
		case <-ctx.Done():
			return
		default:
		}
		if anchor.IsZero() || j%32 == 31 {
			if a, ok := fetchAnchor(ctx, client, base); ok {
				anchor = a
			}
		}
		t := anchor
		if t.IsZero() {
			// No live snapshot yet: probe with the wall clock and let the
			// tier answer with its explicit degraded semantics.
			t = time.Now().UTC()
		}
		t = t.Add(-time.Duration(float64(spread) * atFractions[j%len(atFractions)]))
		url := base + atEndpoints[j%len(atEndpoints)] + "?t=" + neturl.QueryEscape(t.UTC().Format(time.RFC3339Nano))
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
		if err != nil {
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			rep.requests.Add(1)
			rep.netErr.Add(1)
			time.Sleep(every)
			continue
		}
		_, readErr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		rep.requests.Add(1)
		rep.hist.observe(time.Since(start))
		switch {
		case readErr != nil:
			rep.netErr.Add(1)
		case resp.StatusCode == 200:
			rep.ok200.Add(1)
			rep.atOk.Add(1)
		case resp.StatusCode == http.StatusNotModified:
			rep.notModified.Add(1)
		case resp.StatusCode == http.StatusTooManyRequests:
			rep.shed429.Add(1)
		case resp.StatusCode == http.StatusRequestedRangeNotSatisfiable ||
			resp.StatusCode == http.StatusUnprocessableEntity:
			rep.atDegraded.Add(1)
		case resp.StatusCode >= 500:
			rep.server5xx.Add(1)
		default:
			rep.clientErr.Add(1)
		}
		time.Sleep(every)
	}
}

// fetchAnchor reads the live snapshot's event time, the reference the
// -at pollers scrub backwards from.
func fetchAnchor(ctx context.Context, client *http.Client, base string) (time.Time, bool) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/api/snapshot", nil)
	if err != nil {
		return time.Time{}, false
	}
	resp, err := client.Do(req)
	if err != nil {
		return time.Time{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		io.Copy(io.Discard, resp.Body)
		return time.Time{}, false
	}
	var doc struct {
		At time.Time `json:"at"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return time.Time{}, false
	}
	return doc.At, !doc.At.IsZero()
}

// subscriber keeps one SSE stream open, reconnecting after any
// disconnect (including the target being SIGKILLed) until ctx ends.
func subscriber(ctx context.Context, client *http.Client, base string, rep *swarmReport) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		req, err := http.NewRequestWithContext(ctx, "GET", base+"/api/stream", nil)
		if err != nil {
			return
		}
		rep.sseDials.Add(1)
		resp, err := client.Do(req)
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		if resp.StatusCode != 200 {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			select {
			case <-ctx.Done():
				return
			case <-time.After(200 * time.Millisecond):
			}
			continue
		}
		br := bufio.NewReader(resp.Body)
		for {
			event, err := readSSEEvent(br)
			if err != nil {
				break
			}
			switch event {
			case "resync":
				rep.sseResyncs.Add(1)
				rep.sseEvents.Add(1)
			case "bye":
				rep.sseByes.Add(1)
			default:
				rep.sseEvents.Add(1)
			}
		}
		resp.Body.Close()
	}
}

// readSSEEvent reads frames until one complete event; comment-only
// heartbeats are skipped.
func readSSEEvent(br *bufio.Reader) (string, error) {
	event := ""
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return "", err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case line == "" && event != "":
			return event, nil
		}
	}
}
