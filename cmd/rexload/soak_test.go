package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

// reservePort grabs an ephemeral port and releases it for a child
// process to bind. Small reuse race, irrelevant in CI containers.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// buildChild compiles a package into dir, preferring a -race build so
// the child is under the detector too (falling back when the toolchain
// can't race-instrument, e.g. CGO disabled without a prebuilt runtime).
func buildChild(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-race", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Logf("race build of %s failed (%v), building plain:\n%s", pkg, err, out)
		cmd = exec.Command("go", "build", "-o", bin, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}
	return bin
}

func waitHTTP(t *testing.T, url string, wantStatus int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == wantStatus {
				return
			}
			last = fmt.Sprintf("status %d", resp.StatusCode)
		} else {
			last = err.Error()
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s to return %d (last: %s)", url, wantStatus, last)
}

// scrape fetches the child's /metrics.json.
func scrape(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("scrape decode: %v", err)
	}
	return m
}

func mNum(m map[string]any, name string) float64 {
	v, _ := m[name].(float64)
	return v
}

func mVec(m map[string]any, name, label string) float64 {
	vec, _ := m[name].(map[string]any)
	v, _ := vec[label].(float64)
	return v
}

// TestServeSoak is the acceptance drill for the serving tier: a real
// rexd subprocess fed by bgpsim, swarmed by pollers and SSE
// subscribers, SIGKILLed mid-swarm and restarted. Requirements proved
// here:
//
//   - single-flight cache: at most one render per snapshot version per
//     format, no matter how many readers (metrics-scrape inequality);
//   - zero 5xx across the whole swarm, including the kill window —
//     reads degrade to explicitly-stale answers, never errors;
//   - at least one successful degraded-mode (stale) read while the
//     restarted node is still recovering, with /readyz at 503 until
//     the pipeline catches up and flips it back;
//   - time-travel reads (/api/at, instants spread behind the live
//     head) keep answering across the kill/restart cycle: 200s for
//     reconstructible instants, explicit 416/422 for the rest, and
//     never a 5xx — even in the window where the journal was wiped;
//   - bounded tail latency under the swarm.
func TestServeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("builds subprocesses and runs a multi-second chaos soak")
	}
	tmp := t.TempDir()
	rexd := buildChild(t, tmp, "rexd", "rex/cmd/rexd")
	bgpsim := buildChild(t, tmp, "bgpsim", "rex/cmd/bgpsim")
	journal := filepath.Join(tmp, "journal")
	if err := os.MkdirAll(journal, 0o755); err != nil {
		t.Fatal(err)
	}

	bgpAddr := reservePort(t)
	serveAddr := reservePort(t)
	metricsAddr := reservePort(t)
	serveURL := "http://" + serveAddr
	metricsURL := "http://" + metricsAddr

	startRexd := func() *exec.Cmd {
		cmd := exec.Command(rexd,
			"-listen", bgpAddr,
			"-serve-addr", serveAddr,
			"-metrics-addr", metricsAddr,
			"-journal-dir", journal,
			// The pipeline clock is event time, and live BGP events are
			// stamped on arrival — so a paced replay (bgpsim -gap) plus a
			// sub-second cadence yields several snapshot versions per
			// feeding, which is what the single-flight check needs.
			"-snapshot-every", "250ms",
			"-scan-every", "0",
			"-log-level", "warn",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start rexd: %v", err)
		}
		return cmd
	}
	runSim := func() {
		cmd := exec.Command(bgpsim, "-scenario", "flap", "-flaps", "3", "-gap", "2ms", "-replay", bgpAddr)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("bgpsim: %v\n%s", err, out)
		}
	}

	// Phase 1: live rexd, fed, swarmed.
	node := startRexd()
	defer func() {
		if node != nil && node.Process != nil {
			node.Process.Kill()
			node.Wait()
		}
	}()
	waitHTTP(t, serveURL+"/healthz", 200, 15*time.Second)
	runSim()
	waitHTTP(t, serveURL+"/readyz", 200, 30*time.Second)

	swarmDone := make(chan *swarmReport, 1)
	go func() {
		swarmDone <- runSwarm(context.Background(), swarmConfig{
			base:      serveURL,
			pollers:   150,
			subs:      15,
			atPollers: 20,
			atSpread:  30 * time.Second,
			duration:  18 * time.Second,
			pollEvery: 2 * time.Millisecond,
			timeout:   10 * time.Second,
		})
	}()

	// Let the swarm hammer the live node, then prove single-flight off
	// its metrics BEFORE the kill erases them: renders per format never
	// exceed the number of snapshot versions, while hits absorb the
	// rest of the read volume.
	time.Sleep(4 * time.Second)
	m := scrape(t, metricsURL)
	seq := mNum(m, "rex_serve_snapshot_seq")
	if seq < 1 {
		t.Fatalf("rex_serve_snapshot_seq = %v, want >= 1 after feeding", seq)
	}
	var hits, renders float64
	for _, format := range []string{"svg", "json", "components"} {
		r := mVec(m, "rex_serve_renders_total", format)
		h := mVec(m, "rex_serve_cache_hits_total", format)
		renders += r
		hits += h
		if r > seq {
			t.Errorf("format %s rendered %v times for %v snapshot versions: single-flight broken", format, r, seq)
		}
	}
	if hits <= renders {
		t.Errorf("cache hits (%v) not dominating renders (%v) under a %d-poller swarm", hits, renders, 150)
	}
	if replays := mNum(m, "rex_serve_replay_total"); replays < 1 {
		t.Errorf("rex_serve_replay_total = %v, want >= 1 with time-travel pollers active", replays)
	}

	// Phase 2: chaos. SIGKILL the node mid-swarm; readers must keep
	// getting answers (degraded), never 5xx.
	if err := node.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL rexd: %v", err)
	}
	node.Wait()
	time.Sleep(1 * time.Second) // swarm sees the outage window

	// Phase 3: restart with the journal intact. Recovery replays the
	// journal through the pipeline, which re-publishes live snapshots —
	// so the node comes back READY on its own, and reads answer 200
	// throughout (possibly stale for the brief replay window, which the
	// swarm may or may not catch — both are correct).
	node = startRexd()
	waitHTTP(t, serveURL+"/healthz", 200, 15*time.Second)
	waitHTTP(t, serveURL+"/readyz", 200, 30*time.Second)
	resp, err := http.Get(serveURL + "/api/snapshot")
	if err != nil {
		t.Fatalf("read after journal recovery: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("read after journal recovery = %d, want 200", resp.StatusCode)
	}

	// Phase 4: the deterministic degraded window. SIGKILL again and
	// wipe the journal segments and checkpoints — the disaster case
	// where local recovery has nothing to replay — keeping only the
	// serve tier's durable last-snapshot file. The restarted node must
	// answer reads from it, explicitly stale, with /readyz at 503,
	// until fresh events catch the pipeline up.
	if err := node.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	node.Wait()
	for _, pat := range []string{"journal-*.rexj", "checkpoint-*.rexc"} {
		files, err := filepath.Glob(filepath.Join(journal, pat))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			if err := os.Remove(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	node = startRexd()
	waitHTTP(t, serveURL+"/healthz", 200, 15*time.Second)
	resp, err = http.Get(serveURL + "/api/snapshot")
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("degraded read = %d, want 200 (serve the last durable snapshot, don't fail)", resp.StatusCode)
	}
	if resp.Header.Get("X-Rex-Stale") != "true" || resp.Header.Get("X-Rex-Stale-Reason") != "restored" {
		t.Errorf("degraded read headers: stale=%q reason=%q, want true/restored",
			resp.Header.Get("X-Rex-Stale"), resp.Header.Get("X-Rex-Stale-Reason"))
	}
	resp, err = http.Get(serveURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("readyz while degraded = %d, want 503", resp.StatusCode)
	}
	// Fresh events catch the pipeline up and flip readiness back.
	runSim()
	waitHTTP(t, serveURL+"/readyz", 200, 30*time.Second)

	var rep *swarmReport
	select {
	case rep = <-swarmDone:
	case <-time.After(60 * time.Second):
		t.Fatal("swarm never finished")
	}
	rep.print(os.Stderr)

	if got := rep.server5xx.Load(); got != 0 {
		t.Errorf("%d server 5xx responses during the soak, want 0 (reads must degrade, not fail)", got)
	}
	if rep.staleReads.Load() == 0 {
		t.Error("no successful degraded-mode (stale) read observed across the kill/restart window")
	}
	if rep.ok200.Load() == 0 {
		t.Fatal("swarm completed no successful reads")
	}
	if rep.atOk.Load() == 0 {
		t.Error("no successful time-travel read across the soak")
	}
	if rep.sseEvents.Load() == 0 {
		t.Error("SSE subscribers received no events")
	}
	if p99 := rep.hist.quantile(0.99); p99 > 5*time.Second {
		t.Errorf("p99 latency %s exceeds the 5s soak bound", p99)
	}

	// Graceful end: SIGTERM drains the serving tier before the pipeline
	// goes down, and the process exits cleanly.
	if err := node.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- node.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Errorf("rexd exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rexd did not exit after SIGTERM")
	}
	node = nil
}

// TestSwarmUnit exercises the swarm engine itself against a stub
// server, so `go test ./cmd/rexload` stays meaningful without the soak:
// outcome classification (200/stale/429/5xx/net-err) and the histogram.
func TestSwarmUnit(t *testing.T) {
	var mu sync.Mutex
	n := 0
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n++
		k := n
		mu.Unlock()
		switch {
		case k%7 == 0:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case k%5 == 0:
			w.Header().Set("X-Rex-Stale", "true")
			fmt.Fprintln(w, `{"stale":true}`)
		default:
			fmt.Fprintln(w, `{}`)
		}
	})
	var atN int
	mux.HandleFunc("/api/at", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		atN++
		k := atN
		mu.Unlock()
		if k%3 == 0 {
			w.Header().Set("X-Rex-Replay-Reason", "before-history")
			w.WriteHeader(http.StatusRequestedRangeNotSatisfiable)
			return
		}
		fmt.Fprintln(w, `{}`)
	})
	mux.HandleFunc("/api/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "event: hello\ndata: {}\n\n")
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()

	rep := runSwarm(context.Background(), swarmConfig{
		base:      "http://" + ln.Addr().String(),
		pollers:   8,
		subs:      2,
		atPollers: 3,
		atSpread:  time.Minute,
		duration:  600 * time.Millisecond,
		pollEvery: 5 * time.Millisecond,
	})
	if rep.requests.Load() == 0 || rep.ok200.Load() == 0 {
		t.Fatalf("swarm made no successful requests: %+d", rep.requests.Load())
	}
	if rep.shed429.Load() == 0 {
		t.Error("stub shed responses not classified as 429")
	}
	if rep.staleReads.Load() == 0 {
		t.Error("stale responses not counted")
	}
	if rep.server5xx.Load() != 0 {
		t.Errorf("stub produced no 5xx but swarm counted %d", rep.server5xx.Load())
	}
	if rep.sseEvents.Load() == 0 {
		t.Error("SSE hello not counted")
	}
	if rep.atOk.Load() == 0 {
		t.Error("time-travel 200s not counted")
	}
	if rep.atDegraded.Load() == 0 {
		t.Error("explicit 416 replay outcomes not classified as degraded")
	}
	if rep.hist.quantile(0.5) == 0 {
		t.Error("histogram empty after successful requests")
	}
}
