// Command rexload swarms a rexd serving tier (-serve-addr) with
// concurrent pollers and SSE subscribers, then reports what the tier
// did under the load: request outcomes (200/304/429/5xx), degraded-mode
// stale reads, SSE resyncs and byes, and a latency histogram with
// p50/p90/p99. It is the load half of the serving tier's robustness
// story — the server half is proved by its own metrics
// (rex_serve_renders_total staying at one render per snapshot version
// per format while rex_serve_cache_hits_total absorbs the swarm).
//
// A chaos knob makes it a crash drill: -kill-pid sends SIGKILL to the
// given process (your rexd) -kill-after into the run, so you can watch
// reads degrade to explicitly-stale answers and recover instead of
// turning into 5xx. rexload does not restart the victim; pair it with a
// supervisor (or the serve-soak make target, which drives the full
// kill/restart cycle).
//
// Example:
//
//	rexd -listen 127.0.0.1:1790 -serve-addr 127.0.0.1:8080 \
//	     -journal-dir /tmp/rex -snapshot-every 30s &
//	bgpsim -scenario flap -replay 127.0.0.1:1790
//	rexload -addr 127.0.0.1:8080 -pollers 1000 -subs 100 -duration 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"syscall"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rexload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rexload", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "serving tier address (rexd -serve-addr)")
		pollers   = fs.Int("pollers", 200, "concurrent snapshot pollers")
		subs      = fs.Int("subs", 20, "concurrent SSE subscribers")
		duration  = fs.Duration("duration", 15*time.Second, "swarm duration")
		atPollers = fs.Int("at", 0, "concurrent time-travel pollers hitting /api/at with instants behind the live head (0 disables)")
		atSpread  = fs.Duration("at-spread", 2*time.Minute, "how far behind the live snapshot the -at pollers reach")
		pollEvery = fs.Duration("poll-every", 10*time.Millisecond, "per-poller think time between requests")
		timeout   = fs.Duration("timeout", 10*time.Second, "per-request client timeout")
		killPID   = fs.Int("kill-pid", 0, "chaos: SIGKILL this pid mid-swarm (0 disables)")
		killAfter = fs.Duration("kill-after", 3*time.Second, "when -kill-pid is set, kill this long into the run")
		strict    = fs.Bool("strict", false, "exit non-zero if any 5xx was observed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := "http://" + *addr
	fmt.Printf("rexload: swarming %s with %d pollers + %d SSE subscribers", base, *pollers, *subs)
	if *atPollers > 0 {
		fmt.Printf(" + %d time-travel pollers (spread %s)", *atPollers, *atSpread)
	}
	fmt.Printf(" for %s\n", *duration)

	ctx := context.Background()
	if *killPID > 0 {
		go func() {
			time.Sleep(*killAfter)
			fmt.Printf("rexload: chaos: SIGKILL pid %d\n", *killPID)
			if err := syscall.Kill(*killPID, syscall.SIGKILL); err != nil {
				fmt.Fprintf(os.Stderr, "rexload: kill %d: %v\n", *killPID, err)
			}
		}()
	}

	rep := runSwarm(ctx, swarmConfig{
		base:      base,
		pollers:   *pollers,
		subs:      *subs,
		atPollers: *atPollers,
		atSpread:  *atSpread,
		duration:  *duration,
		pollEvery: *pollEvery,
		timeout:   *timeout,
	})
	rep.print(os.Stdout)
	if *strict && rep.server5xx.Load() > 0 {
		return fmt.Errorf("%d server 5xx responses under swarm", rep.server5xx.Load())
	}
	return nil
}
