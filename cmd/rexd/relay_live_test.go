package main

// Live relay test: a real BGP speaker feeds a collector wired exactly
// as run() wires -journal-dir with -relay-to — intake journal hook,
// journal append waking the relay feed, checkpoints that never trim
// past the analysis node's ack — while the analysis node itself comes
// up LATE. Events collected before the node exists must survive the
// checkpoint and be relayed on first contact; events collected after
// must flow live via the append wake-up. The node must end with every
// event exactly once.

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"rex/internal/collector"
	"rex/internal/core/pipeline"
	"rex/internal/event"
	"rex/internal/journal"
	"rex/internal/relay"
)

func TestRelayFeedFromLiveCollector(t *testing.T) {
	dir := t.TempDir()
	const firstBatch, secondBatch = 20, 15
	const total = firstBatch + secondBatch

	// The collector stack, wired as run() does for -journal-dir.
	p1 := pipeline.New(pipeline.Config{Window: time.Hour, SpikeK: -1, Site: "t"})
	p1done := make(chan struct{})
	go func() {
		defer close(p1done)
		for range p1.Snapshots() {
		}
	}()
	var in1 *pipeline.Intake
	c1 := collector.New(collector.Config{
		LocalAS: 65002, LocalID: netip.MustParseAddr("10.255.0.1"),
		WithdrawOnSessionLoss: true, RestartTime: time.Minute,
	}, func(e event.Event) { in1.Offer(e) })
	dur1, err := openDurability(dir, journal.FsyncAlways, time.Hour, p1, c1)
	if err != nil {
		t.Fatal(err)
	}
	in1 = pipeline.NewIntake(pipeline.IntakeConfig{
		Policy: pipeline.OverloadSpill, Journal: dur1.journalEvent,
	}, p1)

	// The analysis node's listener exists (so the feed's dials land in
	// the backlog) but nothing accepts yet: the node is "down".
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	feed := relay.NewFeed(relay.FeedConfig{
		ID: "c1", Dir: dir, Addr: rln.Addr().String(),
		MinBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		HeartbeatEvery: 20 * time.Millisecond, AckTimeout: 200 * time.Millisecond,
		IdleWatermark: time.Now,
	})
	dur1.setRelay(feed.Wake, feed.Acked)
	go feed.Run()

	// Batch one arrives while the node is down, and a checkpoint runs
	// with nothing acked: the trim floor must hold every un-relayed
	// record in the journal.
	h := newSpeaker(t, c1, 0)
	defer h.close()
	srv := h.waitServer(t, "only")
	h.waitUp(t, "only")
	for i := 0; i < firstBatch; i++ {
		if err := srv.Send(announceUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "first batch journaled", func() bool { return dur1.w.NextSeq() >= firstBatch })
	if err := dur1.checkpoint(c1); err != nil {
		t.Fatal(err)
	}
	if feed.Acked() != 0 {
		t.Fatalf("acked %d with the node down", feed.Acked())
	}

	// The analysis node comes up and the backlog drains: first contact
	// must deliver the checkpoint-surviving batch.
	p2 := pipeline.New(pipeline.Config{Window: time.Hour, SpikeK: -1, Site: "node"})
	rcv := relay.NewReceiver(relay.ReceiverConfig{
		Pipeline: p2, ExpectFeeds: []string{"c1"},
		StaleAfter: time.Hour, AckEvery: 4, ReadTimeout: 500 * time.Millisecond,
	})
	go rcv.Serve(rln)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range rcv.Snapshots() {
		}
	}()
	waitFor(t, 15*time.Second, "first batch relayed", func() bool { return feed.Acked() >= firstBatch })

	// Batch two flows live: append → wake → stream, no heartbeat wait.
	for i := firstBatch; i < total; i++ {
		if err := srv.Send(announceUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "second batch relayed", func() bool { return feed.Acked() >= total })

	st := rcv.Statuses()
	if len(st) != 1 || st[0].ID != "c1" {
		t.Fatalf("statuses: %+v", st)
	}
	if st[0].Received != total || st[0].NextSeq != total || st[0].Duplicates != 0 {
		t.Fatalf("node received %d (cursor %d, dups %d), want exactly %d",
			st[0].Received, st[0].NextSeq, st[0].Duplicates, total)
	}

	// Shutdown in run()'s order; the final checkpoint may now trim — the
	// ack floor has caught up.
	h.close()
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	in1.Close()
	if err := dur1.close(c1); err != nil {
		t.Fatal(err)
	}
	feed.Close()
	p1.Close()
	<-p1done
	rcv.Close()
	<-drained
}

// TestRelayFlagValidation covers the new flag plumbing without any
// network activity.
func TestRelayFlagValidation(t *testing.T) {
	if err := run([]string{"-relay-to", "127.0.0.1:1", "-run-for", "50ms", "-log-level", "warn"}); err == nil {
		t.Fatal("-relay-to without -journal-dir accepted")
	}
	if err := run([]string{"-relay-listen", "127.0.0.1:0", "-relay-to", "127.0.0.1:1",
		"-journal-dir", t.TempDir(), "-log-level", "warn"}); err == nil {
		t.Fatal("-relay-listen with -relay-to accepted")
	}
	// The analysis-node role itself: comes up, serves nothing, exits on
	// -run-for.
	if err := run([]string{"-relay-listen", "127.0.0.1:0", "-expect-feeds", "a, b",
		"-run-for", "100ms", "-log-level", "warn"}); err != nil {
		t.Fatalf("analysis-node smoke run: %v", err)
	}
}
