package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rex/internal/core/tamp"
	"rex/internal/serve"
	"rex/internal/viz"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// seedLatest writes a durable last-snapshot file into dir, as a
// previous rexd life would have. The serving tier must restore it and
// answer degraded reads from it while the (empty) pipeline never
// publishes.
func seedLatest(t *testing.T, dir string, seq uint64) {
	t.Helper()
	g := tamp.New("drain-test")
	g.AddRoute(tamp.RouteEntry{
		Router:  "10.0.0.1",
		Nexthop: mustAddr(t, "10.0.0.2"),
		ASPath:  []uint32{65000, 65001},
		Prefix:  mustPrefix(t, "192.0.2.0/24"),
	})
	view := serve.SnapshotView{
		Seq:     seq,
		At:      time.Now().Add(-time.Minute).UTC(),
		Trigger: "tick",
		Events:  17,
		Picture: viz.ExportPicture(g.Snapshot(tamp.PruneOptions{KeepDepth: 3})),
	}
	b, err := json.Marshal(&view)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "serve-latest.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// sseFrame reads one SSE event frame.
func sseFrame(br *bufio.Reader) (event, data string, err error) {
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return "", "", err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			return event, data, nil
		}
	}
}

// TestServeDrainGraceful pins the shutdown ordering contract: the
// serving tier drains BEFORE the pipeline is torn down, so readers keep
// getting complete answers until the listener closes and SSE clients
// get a terminal bye frame — never a connection reset. It also drives
// degraded mode end to end through rexd: the tier restores the durable
// last snapshot of a previous life and serves it explicitly stale.
func TestServeDrainGraceful(t *testing.T) {
	dir := t.TempDir()
	seedLatest(t, dir, 3)

	boundCh := make(chan net.Addr, 1)
	testServeBound = func(a net.Addr) { boundCh <- a }
	defer func() { testServeBound = nil }()

	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-listen", "127.0.0.1:0",
			"-serve-addr", "127.0.0.1:0",
			"-journal-dir", dir,
			"-run-for", "1500ms",
			"-scan-every", "0",
			"-log-level", "warn",
		})
	}()
	var addr net.Addr
	select {
	case addr = <-boundCh:
	case err := <-runErr:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve tier never bound")
	}
	base := "http://" + addr.String()

	// Degraded read from the restored snapshot: 200, explicitly stale.
	resp, err := http.Get(base + "/api/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var view serve.SnapshotView
	json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("restored read = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Rex-Stale") != "true" || resp.Header.Get("X-Rex-Stale-Reason") != "restored" {
		t.Errorf("restored read: stale=%q reason=%q",
			resp.Header.Get("X-Rex-Stale"), resp.Header.Get("X-Rex-Stale-Reason"))
	}
	if view.Seq != 3 || !view.Stale {
		t.Errorf("restored view: seq=%d stale=%t, want 3 true", view.Seq, view.Stale)
	}
	// The picture survived the restart round-trip: SVG renders from it.
	resp, err = http.Get(base + "/api/picture.svg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("restored picture.svg = %d, want 200", resp.StatusCode)
	}
	// Not ready while degraded; alive throughout.
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("readyz while restored = %d, want 503", resp.StatusCode)
	}

	// Background poller: every read until the listener closes must be a
	// complete, successful answer — drain means finish in-flight work,
	// not reset it. 5xx or a mid-body error fails the test.
	var polls, lastSeq atomic.Int64
	pollDone := make(chan error, 1)
	go func() {
		for {
			resp, err := http.Get(base + "/api/snapshot")
			if err != nil {
				// Listener closed: drain finished. Normal end.
				pollDone <- nil
				return
			}
			var v serve.SnapshotView
			decErr := json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				pollDone <- fmt.Errorf("poll got %d during shutdown", resp.StatusCode)
				return
			}
			if decErr != nil {
				pollDone <- fmt.Errorf("truncated response mid-drain: %v", decErr)
				return
			}
			polls.Add(1)
			lastSeq.Store(int64(v.Seq))
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// SSE subscriber: must see hello now and a terminal bye at drain —
	// an EOF without bye is the old connection-reset behavior.
	sresp, err := http.Get(base + "/api/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	br := bufio.NewReader(sresp.Body)
	ev, data, err := sseFrame(br)
	if err != nil || ev != "hello" {
		t.Fatalf("first SSE frame = %q (%v), want hello", ev, err)
	}
	if !strings.Contains(data, `"seq":3`) || !strings.Contains(data, `"stale":true`) {
		t.Errorf("hello payload %s, want restored seq 3 stale", data)
	}

	sawBye := false
	for {
		ev, data, err = sseFrame(br)
		if err != nil {
			break
		}
		if ev == "bye" {
			sawBye = true
			if !strings.Contains(data, "drain") {
				t.Errorf("bye payload %s, want drain reason", data)
			}
			break
		}
	}
	if !sawBye {
		t.Fatalf("SSE stream ended without a bye frame (connection reset instead of drain): %v", err)
	}

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after drain")
	}
	select {
	case err := <-pollDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("poller wedged")
	}
	if polls.Load() == 0 {
		t.Fatal("poller never completed a read")
	}
	if lastSeq.Load() != 3 {
		t.Errorf("last polled seq = %d, want 3 (readers see the final snapshot through drain)", lastSeq.Load())
	}
}

// TestServeOnAnalysisNode wires -serve-addr through the relay role: the
// tier binds, answers liveness, and drains with a bye when the node
// stops — fed via the receiver's SnapshotSink rather than the pipeline
// drain loop.
func TestServeOnAnalysisNode(t *testing.T) {
	boundCh := make(chan net.Addr, 1)
	testServeBound = func(a net.Addr) { boundCh <- a }
	defer func() { testServeBound = nil }()

	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-relay-listen", "127.0.0.1:0",
			"-serve-addr", "127.0.0.1:0",
			"-run-for", "700ms",
			"-log-level", "warn",
		})
	}()
	var addr net.Addr
	select {
	case addr = <-boundCh:
	case err := <-runErr:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve tier never bound")
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	sresp, err := http.Get(base + "/api/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	br := bufio.NewReader(sresp.Body)
	if ev, _, err := sseFrame(br); err != nil || ev != "hello" {
		t.Fatalf("first SSE frame = %q (%v), want hello", ev, err)
	}
	sawBye := false
	for {
		ev, _, err := sseFrame(br)
		if err != nil {
			break
		}
		if ev == "bye" {
			sawBye = true
			break
		}
	}
	if !sawBye {
		t.Fatal("analysis-node SSE stream ended without a bye frame")
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return")
	}
}
