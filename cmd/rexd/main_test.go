package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/bgp/fsm"
	"rex/internal/bgp/fsm/faultconn"
	"rex/internal/collector"
	"rex/internal/event"
	"rex/internal/mrt"
	"rex/internal/obs"
)

// scrapeJSON fetches and decodes the /metrics.json snapshot.
func scrapeJSON(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// num reads a plain counter/gauge from a JSON snapshot (0 if absent).
func num(m map[string]any, name string) float64 {
	v, _ := m[name].(float64)
	return v
}

// vecNum reads one label's value from a vector metric (0 if absent).
func vecNum(m map[string]any, name, label string) float64 {
	vec, _ := m[name].(map[string]any)
	v, _ := vec[label].(float64)
	return v
}

// TestMetricsDuringFaultyRun is the end-to-end observability check: a
// collector fed by a PeerManager whose transport goes through faultconn,
// scraped over HTTP while the session is forced to flap. The flap and
// session-lifecycle counters must move between scrapes.
func TestMetricsDuringFaultyRun(t *testing.T) {
	ts := httptest.NewServer(obs.Handler(obs.Default))
	defer ts.Close()
	before := scrapeJSON(t, ts.URL)

	// A passive BGP speaker standing in for the site's edge router.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var srvMu sync.Mutex
	var srvSessions []*fsm.Session
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				s, err := fsm.Establish(conn, fsm.Config{
					LocalAS: 65001, LocalID: netip.MustParseAddr("10.0.0.9"),
				})
				if err != nil {
					return
				}
				srvMu.Lock()
				srvSessions = append(srvSessions, s)
				srvMu.Unlock()
			}()
		}
	}()
	defer func() {
		ln.Close()
		wg.Wait()
		srvMu.Lock()
		defer srvMu.Unlock()
		for _, s := range srvSessions {
			s.Close()
		}
	}()

	c := collector.New(collector.Config{
		LocalAS:               65002,
		LocalID:               netip.MustParseAddr("10.255.0.1"),
		WithdrawOnSessionLoss: true,
		RestartTime:           collector.RestartDisabled,
	}, func(event.Event) {})
	defer c.Close()

	// The manager dials through faultconn so the test can sever the
	// transport mid-session, like a TCP reset on a long-lived peering.
	conns := make(chan *faultconn.Conn, 8)
	ups := make(chan *fsm.Session, 8)
	m := fsm.NewPeerManager(fsm.ManagerConfig{
		MinBackoff:      10 * time.Millisecond,
		MaxBackoff:      80 * time.Millisecond,
		IdleHoldTime:    10 * time.Millisecond,
		MaxIdleHoldTime: 80 * time.Millisecond,
		Jitter:          func() float64 { return 0 },
		Dial: func(_ context.Context, network, addr string) (net.Conn, error) {
			raw, err := net.Dial(network, addr)
			if err != nil {
				return nil, err
			}
			fc := faultconn.New(raw, faultconn.Options{})
			conns <- fc
			return fc, nil
		},
		OnUp: func(_ string, s *fsm.Session) {
			ups <- s
			go c.Run(s)
		},
	})
	defer m.Close()
	if err := m.Add(ln.Addr().String(), fsm.Config{
		LocalAS: 65002, LocalID: netip.MustParseAddr("10.255.0.1"),
	}); err != nil {
		t.Fatal(err)
	}

	waitUp := func(what string) {
		t.Helper()
		select {
		case <-ups:
		case <-time.After(10 * time.Second):
			t.Fatalf("%s session never established", what)
		}
	}
	waitUp("first")
	fc := <-conns
	fc.Cut() // the injected fault: a mid-stream reset
	waitUp("second")

	// The second session-up and the flap count are recorded from other
	// goroutines; poll the endpoint like an external scraper would.
	deadline := time.Now().Add(10 * time.Second)
	for {
		after := scrapeJSON(t, ts.URL)
		upDelta := vecNum(after, "rex_collector_session_events_total", "session-up") -
			vecNum(before, "rex_collector_session_events_total", "session-up")
		flapDelta := num(after, "rex_peermanager_flaps_total") - num(before, "rex_peermanager_flaps_total")
		if upDelta >= 2 && flapDelta >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("counters never moved: session-up delta = %v (want >= 2), flap delta = %v (want >= 1)",
				upDelta, flapDelta)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The Prometheus endpoint must expose the same families as text.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(prom)
	for _, want := range []string{
		`rex_peermanager_flaps_total`,
		`rex_collector_session_events_total{kind="session-up"}`,
		`rex_peermanager_transitions_total{phase="established"}`,
		`# TYPE rex_pipeline_settle_seconds histogram`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsCoverMRTSkips replays a mixed IPv4/IPv6 MRT update stream
// and checks the skip counter moves on the scrape endpoint: the
// ingestion path and the observability path agree about what happened.
func TestMetricsCoverMRTSkips(t *testing.T) {
	ts := httptest.NewServer(obs.Handler(obs.Default))
	defer ts.Close()
	before := scrapeJSON(t, ts.URL)

	t0 := time.Unix(1120190000, 0).UTC()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	for _, prefix := range []string{"192.96.10.0/24", "12.2.41.0/24"} {
		if err := w.WriteMessage(mrt.Message{
			Time: t0, PeerAS: 65001, LocalAS: 65002,
			PeerAddr: netip.MustParseAddr("128.32.1.3"),
			Msg: &bgp.Update{
				Attrs: &bgp.PathAttrs{
					Origin:  bgp.OriginIGP,
					ASPath:  bgp.Sequence(65001, 174),
					Nexthop: netip.MustParseAddr("10.0.0.1"),
				},
				NLRI: []netip.Prefix{netip.MustParsePrefix(prefix)},
			},
			AS4: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// A raw BGP4MP MESSAGE_AS4 record with AFI 2 (IPv6), the shape a
	// RouteViews file interleaves into an IPv4 replay.
	body := binary.BigEndian.AppendUint32(nil, 65001) // peer AS
	body = binary.BigEndian.AppendUint32(body, 65002) // local AS
	body = binary.BigEndian.AppendUint16(body, 0)     // ifindex
	body = binary.BigEndian.AppendUint16(body, 2)     // AFI IPv6
	body = append(body, make([]byte, 32)...)          // v6 peer + local addrs
	hdr := binary.BigEndian.AppendUint32(nil, uint32(t0.Unix()))
	hdr = binary.BigEndian.AppendUint16(hdr, 16) // BGP4MP
	hdr = binary.BigEndian.AppendUint16(hdr, 4)  // MESSAGE_AS4
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(body)))
	buf.Write(hdr)
	buf.Write(body)

	r := mrt.NewReader(&buf)
	records := 0
	for {
		_, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("mixed stream aborted after %d records: %v", records, err)
		}
		records++
	}
	if records != 2 {
		t.Fatalf("parsed %d records, want 2", records)
	}

	after := scrapeJSON(t, ts.URL)
	if d := vecNum(after, "rex_mrt_records_total", "skipped_afi") -
		vecNum(before, "rex_mrt_records_total", "skipped_afi"); d < 1 {
		t.Errorf("skipped_afi delta = %v, want >= 1", d)
	}
	if d := vecNum(after, "rex_mrt_records_total", "parsed") -
		vecNum(before, "rex_mrt_records_total", "parsed"); d < 2 {
		t.Errorf("parsed delta = %v, want >= 2", d)
	}
}

// TestRunSmoke drives the real daemon entry point: ephemeral listen and
// metrics ports, a short -run-for, and a clean exit.
func TestRunSmoke(t *testing.T) {
	err := run([]string{
		"-listen", "127.0.0.1:0",
		"-metrics-addr", "127.0.0.1:0",
		"-run-for", "150ms",
		"-scan-every", "0",
		"-log-level", "warn",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-log-level", "shouting"}); err == nil {
		t.Fatal("bad -log-level accepted")
	}
}
