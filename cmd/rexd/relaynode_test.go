package main

import (
	"reflect"
	"testing"
)

// TestSplitFeedsDedupe: a pasted roster with repeated entries used to
// reach the receiver verbatim, duplicating the merge-order list.
func TestSplitFeedsDedupe(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a,b,c", []string{"a", "b", "c"}},
		{"a, a ,b,a", []string{"a", "b"}},
		{"rr1,rr1", []string{"rr1"}},
		{" , ,", nil},
		{"", nil},
	}
	for _, c := range cases {
		if got := splitFeeds(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitFeeds(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
