// rexd's analysis-node role: with -relay-listen the daemon is the
// central end of the fan-in tier. Instead of speaking BGP it accepts
// relay feeds from collector rexds (-relay-to), merges their event
// streams deterministically, and runs the analysis pipeline over the
// merged stream. A feed that goes silent is flagged stale and stops
// gating the merge — analysis continues on the survivors, and the
// stale feed's routes age out upstream via graceful-restart retention
// rather than being withdrawn synthetically here.
//
// With -journal-dir the analysis node is durable too: the merged
// stream is journaled, the per-feed resume cursors and pipeline state
// are checkpointed (-checkpoint-every), and a restarted node resumes
// every feed at its durable cursor instead of refetching from zero —
// the same recovery discipline the collector role gets from the flag.
package main

import (
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/obs"
	"rex/internal/relay"
	"rex/internal/serve"
)

// splitFeeds parses the -expect-feeds roster, dropping duplicate
// entries (a pasted roster with a repeated feed must not make the
// receiver gate on the same feed twice).
func splitFeeds(s string) []string {
	var out []string
	seen := map[string]bool{}
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" && !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// runAnalysisNode serves relay feeds into p until a signal or -run-for
// elapses, then flushes and prints the final analysis. cfg carries the
// durability settings (Dir empty = memory-only); Pipeline and
// ExpectFeeds are filled in here. api, when non-nil, is the serving
// tier: it is fed through the receiver's synchronous SnapshotSink —
// Publish never blocks, so the sink cannot stall checkpointing — and
// every served snapshot carries the feeds' health.
func runAnalysisNode(addr string, roster []string, p *pipeline.Pipeline, runFor time.Duration, cfg relay.ReceiverConfig, api *serve.Server) error {
	cfg.Pipeline = p
	cfg.ExpectFeeds = roster
	if api != nil {
		cfg.SnapshotSink = func(s relay.Snapshot) {
			api.Publish(s.Snapshot, feedHealth(s.Feeds))
		}
	}
	rcv, err := relay.OpenReceiver(cfg)
	if err != nil {
		return fmt.Errorf("analysis-node recovery: %w", err)
	}
	if stats, ok := rcv.RecoveryStats(); ok {
		obs.Logf(obs.Info, "rexd",
			"analysis node recovered: checkpoint=%v, %d routes restored, %d events replayed, %d orphans dropped, journal at seq %d",
			stats.HadCheckpoint, stats.RestoredRoutes, stats.Replayed, stats.Truncated, stats.ResumeSeq)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	who := "any feed"
	if len(roster) > 0 {
		who = strings.Join(roster, ", ")
	}
	obs.Logf(obs.Info, "rexd", "analysis node on %s (accepting: %s)", ln.Addr(), who)
	go rcv.Serve(ln)

	var finalSnap pipeline.Snapshot
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		stale := map[string]bool{}
		for s := range rcv.Snapshots() {
			if s.Trigger == pipeline.TriggerFinal {
				finalSnap = s.Snapshot
				continue
			}
			printSnapshot(s.Snapshot)
			// Degradation transitions, printed once per flip.
			for _, fs := range s.Feeds {
				if fs.Stale == stale[fs.ID] {
					continue
				}
				stale[fs.ID] = fs.Stale
				if fs.Stale {
					fmt.Printf("rexd: feed %s STALE (cursor %d, last heard %s); analysis continues on survivors\n",
						fs.ID, fs.NextSeq, fs.LastHeard.Format(time.RFC3339))
				} else {
					fmt.Printf("rexd: feed %s recovered (cursor %d)\n", fs.ID, fs.NextSeq)
				}
			}
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	var timeout <-chan time.Time
	if runFor > 0 {
		timer := time.NewTimer(runFor)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case <-stop:
	case <-timeout:
	}
	// Serve drain before receiver/pipeline shutdown: readers finish
	// against the last snapshot and SSE clients get a terminal bye
	// while the backend is still whole.
	drainServeTier(api)
	rcv.Close()
	<-snapDone
	printFinal(finalSnap)
	return nil
}
