// rexd's analysis-node role: with -relay-listen the daemon is the
// central end of the fan-in tier. Instead of speaking BGP it accepts
// relay feeds from collector rexds (-relay-to), merges their event
// streams deterministically, and runs the analysis pipeline over the
// merged stream. A feed that goes silent is flagged stale and stops
// gating the merge — analysis continues on the survivors, and the
// stale feed's routes age out upstream via graceful-restart retention
// rather than being withdrawn synthetically here.
package main

import (
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/obs"
	"rex/internal/relay"
)

// splitFeeds parses the -expect-feeds roster.
func splitFeeds(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// runAnalysisNode serves relay feeds into p until a signal or -run-for
// elapses, then flushes and prints the final analysis.
func runAnalysisNode(addr string, roster []string, p *pipeline.Pipeline, runFor time.Duration) error {
	rcv := relay.NewReceiver(relay.ReceiverConfig{Pipeline: p, ExpectFeeds: roster})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	who := "any feed"
	if len(roster) > 0 {
		who = strings.Join(roster, ", ")
	}
	obs.Logf(obs.Info, "rexd", "analysis node on %s (accepting: %s)", ln.Addr(), who)
	go rcv.Serve(ln)

	var finalSnap pipeline.Snapshot
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		stale := map[string]bool{}
		for s := range rcv.Snapshots() {
			if s.Trigger == pipeline.TriggerFinal {
				finalSnap = s.Snapshot
				continue
			}
			printSnapshot(s.Snapshot)
			// Degradation transitions, printed once per flip.
			for _, fs := range s.Feeds {
				if fs.Stale == stale[fs.ID] {
					continue
				}
				stale[fs.ID] = fs.Stale
				if fs.Stale {
					fmt.Printf("rexd: feed %s STALE (cursor %d, last heard %s); analysis continues on survivors\n",
						fs.ID, fs.NextSeq, fs.LastHeard.Format(time.RFC3339))
				} else {
					fmt.Printf("rexd: feed %s recovered (cursor %d)\n", fs.ID, fs.NextSeq)
				}
			}
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	var timeout <-chan time.Time
	if runFor > 0 {
		timer := time.NewTimer(runFor)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case <-stop:
	case <-timeout:
	}
	rcv.Close()
	<-snapDone
	printFinal(finalSnap)
	return nil
}
