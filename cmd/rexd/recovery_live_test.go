package main

// Live durability tests: a real BGP speaker over real sockets, a
// faultconn-injected flap, a simulated daemon crash, and the recovery
// path rexd runs at startup. Plus the overload acceptance check: a
// deliberately stalled analysis consumer must not delay the
// collector's read loop past the hold timer.

import (
	"context"
	"net"
	"net/http/httptest"
	"net/netip"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rex/internal/bgp"
	"rex/internal/bgp/fsm"
	"rex/internal/bgp/fsm/faultconn"
	"rex/internal/collector"
	"rex/internal/core/pipeline"
	"rex/internal/event"
	"rex/internal/journal"
	"rex/internal/obs"
)

// speaker is the remote end: a passive BGP speaker the collector dials
// through faultconn, so tests can announce routes and sever the
// transport mid-session.
type speaker struct {
	ln       net.Listener
	mgr      *fsm.PeerManager
	sessions chan *fsm.Session // server-side session per establish
	conns    chan *faultconn.Conn
	ups      chan *fsm.Session // collector-side session per establish
	wg       sync.WaitGroup
	closeMu  sync.Once
}

func newSpeaker(t *testing.T, c *collector.Collector, hold time.Duration) *speaker {
	t.Helper()
	h := &speaker{
		sessions: make(chan *fsm.Session, 8),
		conns:    make(chan *faultconn.Conn, 8),
		ups:      make(chan *fsm.Session, 8),
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h.ln = ln
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				s, err := fsm.Establish(conn, fsm.Config{
					LocalAS: 65001, LocalID: netip.MustParseAddr("10.0.0.9"), HoldTime: hold,
				})
				if err != nil {
					return
				}
				h.sessions <- s
			}()
		}
	}()
	h.mgr = fsm.NewPeerManager(fsm.ManagerConfig{
		MinBackoff:      10 * time.Millisecond,
		MaxBackoff:      80 * time.Millisecond,
		IdleHoldTime:    10 * time.Millisecond,
		MaxIdleHoldTime: 80 * time.Millisecond,
		Jitter:          func() float64 { return 0 },
		Dial: func(_ context.Context, network, addr string) (net.Conn, error) {
			raw, err := net.Dial(network, addr)
			if err != nil {
				return nil, err
			}
			fc := faultconn.New(raw, faultconn.Options{})
			h.conns <- fc
			return fc, nil
		},
		OnUp: func(_ string, s *fsm.Session) {
			h.ups <- s
			go c.Run(s)
		},
	})
	if err := h.mgr.Add(ln.Addr().String(), fsm.Config{
		LocalAS: 65002, LocalID: netip.MustParseAddr("10.255.0.1"), HoldTime: hold,
	}); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *speaker) close() {
	h.closeMu.Do(func() {
		h.mgr.Close()
		h.ln.Close()
		h.wg.Wait()
		close(h.sessions)
		for s := range h.sessions {
			s.Close()
		}
	})
}

func (h *speaker) waitServer(t *testing.T, what string) *fsm.Session {
	t.Helper()
	select {
	case s := <-h.sessions:
		return s
	case <-time.After(10 * time.Second):
		t.Fatalf("%s server-side session never established", what)
		return nil
	}
}

func (h *speaker) waitUp(t *testing.T, what string) {
	t.Helper()
	select {
	case <-h.ups:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s collector-side session never established", what)
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func announceUpdate(i int) *bgp.Update {
	return &bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.Sequence(65001, 174),
			Nexthop: netip.MustParseAddr("10.0.0.1"),
		},
		NLRI: []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)},
	}
}

// TestJournalRecoveryAcrossRestart is the live recovery test: a
// faultconn-backed session announces routes and is flapped mid-run, a
// checkpoint is taken between the batches, the daemon's pipeline is
// then killed without any graceful final checkpoint — the crash — and
// a restarted collector/pipeline pair recovers from the directory.
// The restored table, the replayed event count, and the rebuilt TAMP
// picture must all match what the dead process had.
func TestJournalRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	const firstBatch, secondBatch = 20, 10
	const total = firstBatch + secondBatch

	// --- Phase 1: live collection, exactly as run() wires it. ---
	p1 := pipeline.New(pipeline.Config{Window: time.Hour, SpikeK: -1, Site: "t"})
	p1done := make(chan struct{})
	go func() {
		defer close(p1done)
		for range p1.Snapshots() {
		}
	}()
	var in1 *pipeline.Intake
	c1 := collector.New(collector.Config{
		LocalAS: 65002, LocalID: netip.MustParseAddr("10.255.0.1"),
		WithdrawOnSessionLoss: true, RestartTime: time.Minute,
	}, func(e event.Event) { in1.Offer(e) })
	dur1, err := openDurability(dir, journal.FsyncAlways, time.Hour, p1, c1)
	if err != nil {
		t.Fatal(err)
	}
	in1 = pipeline.NewIntake(pipeline.IntakeConfig{
		Policy: pipeline.OverloadSpill, Journal: dur1.journalEvent,
	}, p1)

	h := newSpeaker(t, c1, 0)
	defer h.close()
	srv := h.waitServer(t, "first")
	h.waitUp(t, "first")
	for i := 0; i < firstBatch; i++ {
		if err := srv.Send(announceUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "first batch installed", func() bool { return c1.NumRoutes() == firstBatch })
	waitFor(t, 10*time.Second, "first batch journaled", func() bool { return dur1.w.NextSeq() >= firstBatch })
	// The periodic checkpoint fires between the batches.
	if err := dur1.checkpoint(c1); err != nil {
		t.Fatal(err)
	}

	// The flap: sever the transport, let the manager redial, announce a
	// second batch over the new session.
	fc := <-h.conns
	fc.Cut()
	srv2 := h.waitServer(t, "second")
	h.waitUp(t, "second")
	for i := firstBatch; i < total; i++ {
		if err := srv2.Send(announceUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "second batch installed", func() bool { return c1.NumRoutes() == total })
	waitFor(t, 10*time.Second, "second batch journaled", func() bool { return dur1.w.NextSeq() >= total })

	// The crash: stop the sessions, drain the intake into the journal,
	// and abandon everything else. Deliberately NO final checkpoint —
	// the journal tail is all the second batch leaves behind. The
	// collector is torn down only after journaling has stopped, so its
	// shutdown sweeps never reach the journal, just like a SIGKILLed
	// process's would not.
	h.close()
	in1.Close()
	if err := dur1.w.Close(); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	p1.Close()
	<-p1done

	// --- Phase 2: the restarted daemon recovers the directory. ---
	p2 := pipeline.New(pipeline.Config{Window: time.Hour, SpikeK: -1, Site: "t"})
	var final pipeline.Snapshot
	p2done := make(chan struct{})
	go func() {
		defer close(p2done)
		for s := range p2.Snapshots() {
			if s.Trigger == pipeline.TriggerFinal {
				final = s
			}
		}
	}()
	c2 := collector.New(collector.Config{
		LocalAS: 65002, LocalID: netip.MustParseAddr("10.255.0.1"),
		WithdrawOnSessionLoss: true, RestartTime: time.Minute,
	}, func(event.Event) {})
	defer c2.Close()
	dur2, err := openDurability(dir, journal.FsyncAlways, time.Hour, p2, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer dur2.w.Close()

	// The checkpoint covered the first batch; the journal tail replays
	// everything the hour-long analysis window still needs.
	if dur2.restored != firstBatch {
		t.Errorf("restored %d routes from the checkpoint, want %d", dur2.restored, firstBatch)
	}
	if got := c2.NumRoutes(); got != firstBatch {
		t.Errorf("restored collector holds %d routes, want %d", got, firstBatch)
	}
	if dur2.replayed != total {
		t.Errorf("replayed %d journaled events, want %d", dur2.replayed, total)
	}
	if dur2.w.NextSeq() != total {
		t.Errorf("resumed journal at seq %d, want %d", dur2.w.NextSeq(), total)
	}
	p2.Close()
	<-p2done
	if final.Picture == nil || final.Picture.Total != total {
		t.Fatalf("recovered TAMP picture holds %v routes, want %d", final.Picture, total)
	}
	if final.Events != total {
		t.Errorf("recovered window holds %d events, want %d", final.Events, total)
	}
}

// TestShedModeKeepsSessionAlive is the overload acceptance check: the
// analysis pipeline is deliberately wedged (unread snapshot, tiny
// buffer) while a peer announces a burst; with shed mode on the
// intake, the collector's read loop must stay undelayed — every route
// installed well inside the 3s hold time, no session-down, and the
// shed counter showing the overload was real.
func TestShedModeKeepsSessionAlive(t *testing.T) {
	ts := httptest.NewServer(obs.Handler(obs.Default))
	defer ts.Close()
	before := scrapeJSON(t, ts.URL)

	// Event-time ticks every millisecond into an unread Snapshots()
	// channel: the run loop wedges almost immediately.
	p := pipeline.New(pipeline.Config{Buffer: 4, SnapshotEvery: time.Millisecond, SpikeK: -1})
	var in *pipeline.Intake
	var downs atomic.Int64
	c := collector.New(collector.Config{
		LocalAS: 65002, LocalID: netip.MustParseAddr("10.255.0.1"),
		HoldTime:              3 * time.Second, // fsm.MinHoldTime: the tightest legal timer
		WithdrawOnSessionLoss: true,
		RestartTime:           collector.RestartDisabled,
		OnSessionEvent: func(e collector.SessionEvent) {
			if e.Kind == collector.SessionDown {
				downs.Add(1)
			}
		},
	}, func(e event.Event) { in.Offer(e) })
	in = pipeline.NewIntake(pipeline.IntakeConfig{Depth: 16, Policy: pipeline.OverloadShed}, p)

	h := newSpeaker(t, c, 3*time.Second)
	defer func() {
		h.close()
		c.Close()
		in.Close()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range p.Snapshots() {
			}
		}()
		p.Close()
		<-done
	}()
	srv := h.waitServer(t, "only")
	h.waitUp(t, "only")

	const n = 2000
	for i := 0; i < n; i++ {
		if err := srv.Send(announceUpdate(i)); err != nil {
			t.Fatalf("send %d failed — the session died mid-burst: %v", i, err)
		}
	}
	// Every announcement must be read and installed well inside one
	// hold interval; a blocked read loop would stall this far short of
	// n (pipeline buffer + intake queue is ~20 events).
	waitFor(t, 2500*time.Millisecond, "burst absorbed by the read loop", func() bool {
		return c.NumRoutes() == n
	})

	// Cross a full quiet hold interval: keepalives must sustain the
	// session even though the analysis consumer is still wedged.
	time.Sleep(3200 * time.Millisecond)
	if got := downs.Load(); got != 0 {
		t.Fatalf("%d session-down event(s) — hold timer expired behind a stalled consumer", got)
	}
	if peers := c.Peers(); len(peers) != 1 {
		t.Fatalf("peer list %v, want exactly one live peer", peers)
	}

	after := scrapeJSON(t, ts.URL)
	if d := num(after, "rex_intake_shed_total") - num(before, "rex_intake_shed_total"); d <= 0 {
		t.Errorf("intake shed nothing — the consumer was not actually overloaded")
	}
}

// TestRunSmokeWithJournal drives the real entry point through the new
// flags: a journaled run leaves segments and a final checkpoint
// behind, a second run recovers from them, and bad flag values are
// rejected.
func TestRunSmokeWithJournal(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-listen", "127.0.0.1:0",
		"-run-for", "200ms",
		"-scan-every", "0",
		"-log-level", "warn",
		"-journal-dir", dir,
		"-checkpoint-every", "50ms",
	}
	if err := run(append(base, "-fsync", "always", "-overload", "spill")); err != nil {
		t.Fatalf("journaled run: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.rexj"))
	ckpts, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.rexc"))
	if len(segs) == 0 || len(ckpts) == 0 {
		t.Fatalf("journaled run left %d segments and %d checkpoints, want both > 0", len(segs), len(ckpts))
	}
	// Second run: the recovery path executes against the directory the
	// first run left behind.
	if err := run(append(base, "-fsync", "interval", "-overload", "shed")); err != nil {
		t.Fatalf("recovering run: %v", err)
	}
	if err := run(append(base, "-fsync", "sometimes")); err == nil {
		t.Fatal("bad -fsync accepted")
	}
	if err := run(append(base, "-overload", "drop")); err == nil {
		t.Fatal("bad -overload accepted")
	}
}
