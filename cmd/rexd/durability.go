// The daemon's durability layer: glue between the collector/pipeline
// pair and internal/journal. Startup recovers whatever a previous
// process left behind (checkpoint, then journal tail), the intake's
// journal hook appends every live event, and a periodic checkpoint
// bounds both replay time and journal growth.
package main

import (
	"net/netip"
	"sort"
	"sync"
	"time"

	"rex/internal/collector"
	"rex/internal/core/pipeline"
	"rex/internal/event"
	"rex/internal/journal"
	"rex/internal/obs"
	"rex/internal/rib"
)

// timeIndexStride samples one (seq, time) pair per this many journaled
// events; checkpoint replay floors are at worst this many events
// conservative.
const timeIndexStride = 64

// durability owns the journal writer, the sequence→time index that
// turns the analysis window into a replay floor, and the checkpoint
// cycle.
type durability struct {
	dir    string
	window time.Duration
	w      *journal.Writer
	ix     *journal.TimeIndex

	// restored/replayed describe what startup recovery found; the live
	// test asserts on them and the log line reports them.
	restored int
	replayed uint64

	mu       sync.Mutex
	lastTime time.Time // running max of journaled event times

	// Relay wiring (set by setRelay when -relay-to is active): wakeFeed
	// nudges the feed after every append, ackFloor bounds checkpoint
	// trimming to the receiver's acked cursor so un-relayed events are
	// never trimmed away — a restart resumes relaying from the journal.
	wakeFeed func()
	ackFloor func() uint64
}

// setRelay connects a relay feed to the journal lifecycle. Call before
// live sessions start delivering events.
func (d *durability) setRelay(wake func(), acked func() uint64) {
	d.mu.Lock()
	d.wakeFeed = wake
	d.ackFloor = acked
	d.mu.Unlock()
}

// openDurability runs the recovery path into p and c, then opens the
// writer for live appends. Order matters: the collector's tables and
// the pipeline's seeds must be in place before the journal tail is
// replayed on top of them, and the tail replay must finish before the
// writer resumes numbering at its end.
func openDurability(dir string, fsync journal.FsyncPolicy, window time.Duration,
	p *pipeline.Pipeline, c *collector.Collector) (*durability, error) {
	d := &durability{dir: dir, window: window, ix: journal.NewTimeIndex(timeIndexStride)}

	// Bracket seeding + tail replay: live sessions may already be
	// delivering events concurrently, and a checkpoint seed arriving
	// after a live event for the same route key is by definition stale —
	// the recovery span makes the pipeline drop it instead of letting it
	// resurrect an overwritten or withdrawn route.
	p.BeginRecovery()
	defer p.EndRecovery()

	ckpt, err := journal.LoadLatestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	if ckpt != nil {
		for _, pt := range ckpt.Peers {
			d.restored += c.RestoreTable(pt.Peer, pt.Routes)
		}
		for _, e := range ckpt.SeedEvents() {
			p.Seed(*e)
		}
		obs.Logf(obs.Info, "rexd", "checkpoint seq %d: restored %d routes across %d peers (taken %s)",
			ckpt.NextSeq, d.restored, len(ckpt.Peers), ckpt.TakenAt.Format(time.RFC3339))
	}

	st, err := journal.Recover(dir, func(seq uint64, e *event.Event) error {
		p.Ingest(*e)
		d.observe(seq, e.Time)
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.replayed = st.Replayed
	if st.Replayed > 0 || st.Stats.Skipped > 0 || st.Stats.Abandoned > 0 {
		obs.Logf(obs.Info, "rexd", "journal replayed %d events from seq %d (skipped %d, abandoned %d)",
			st.Replayed, st.ReplayFrom, st.Stats.Skipped, st.Stats.Abandoned)
	}

	w, err := journal.Open(dir, journal.Options{Fsync: fsync, StartSeq: st.EndSeq})
	if err != nil {
		return nil, err
	}
	d.w = w
	obs.Logf(obs.Info, "rexd", "journal open in %s at seq %d (fsync=%v)", dir, w.NextSeq(), fsync)
	return d, nil
}

// journalEvent is the intake's durability hook: append, then feed the
// time index that checkpoint replay floors come from.
func (d *durability) journalEvent(e *event.Event) error {
	seq, err := d.w.Append(e)
	if err != nil {
		return err
	}
	d.observe(seq, e.Time)
	d.mu.Lock()
	wake := d.wakeFeed
	d.mu.Unlock()
	if wake != nil {
		wake()
	}
	return nil
}

func (d *durability) observe(seq uint64, t time.Time) {
	d.ix.Observe(seq, t)
	d.mu.Lock()
	if t.After(d.lastTime) {
		d.lastTime = t
	}
	d.mu.Unlock()
}

// checkpoint captures the collector's tables and trims what the
// checkpoint makes replayable. The sequence-ordered contract: NextSeq
// is read first, the journal is synced so no covered record can be
// torn away, and only then are the tables snapshotted — so every
// record below NextSeq is both durable and reflected in the snapshot.
func (d *durability) checkpoint(c *collector.Collector) error {
	nextSeq := d.w.NextSeq()
	if err := d.w.Sync(); err != nil {
		return err
	}
	d.mu.Lock()
	last := d.lastTime
	d.mu.Unlock()
	ck := &journal.Checkpoint{NextSeq: nextSeq, ReplayLow: nextSeq, TakenAt: time.Now()}
	if !last.IsZero() {
		// Replay must rebuild the analysis window: floor at the oldest
		// event the window still holds, in event time.
		ck.WindowStart = last.Add(-d.window)
		if low := d.ix.LowWater(ck.WindowStart); low < nextSeq {
			ck.ReplayLow = low
		}
	}
	ck.Peers = peerTables(c)
	if _, err := journal.WriteCheckpoint(d.dir, ck); err != nil {
		return err
	}
	if _, err := journal.PruneCheckpoints(d.dir, 3); err != nil {
		return err
	}
	// Trim no further than the relay receiver has acked: records the
	// analysis node has not durably received stay on disk, and a
	// restarted daemon resumes relaying them from the journal.
	floor := ck.ReplayLow
	d.mu.Lock()
	ackFloor := d.ackFloor
	d.mu.Unlock()
	if ackFloor != nil {
		if a := ackFloor(); a < floor {
			floor = a
		}
	}
	if _, err := d.w.TrimTo(floor); err != nil {
		return err
	}
	obs.Logf(obs.Debug, "rexd", "checkpoint at seq %d (replay floor %d, trim floor %d, %d routes)",
		ck.NextSeq, ck.ReplayLow, floor, ck.RouteCount())
	return nil
}

// close takes the final checkpoint — the next start then replays next
// to nothing — and closes the writer. Call only after the collector
// and intake have drained, so the checkpoint covers everything.
func (d *durability) close(c *collector.Collector) error {
	err := d.checkpoint(c)
	if cerr := d.w.Close(); err == nil {
		err = cerr
	}
	return err
}

// peerTables snapshots the collector's routes grouped per peer, sorted
// by peer address as the checkpoint format expects.
func peerTables(c *collector.Collector) []journal.PeerTable {
	byPeer := map[netip.Addr][]*rib.Route{}
	for _, r := range c.Routes() {
		byPeer[r.Peer] = append(byPeer[r.Peer], r)
	}
	out := make([]journal.PeerTable, 0, len(byPeer))
	for peer, routes := range byPeer {
		out = append(out, journal.PeerTable{Peer: peer, Routes: routes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer.Compare(out[j].Peer) < 0 })
	return out
}
