// Command rexd is the collector daemon: the Route Explorer role from the
// paper's §II. It listens for passive IBGP sessions from a site's BGP
// edge routers (or a simulator replay), and can also actively dial peers
// given with -peer, redialing forever with backoff when they fall over.
// It maintains an Adj-RIB-In per peer with graceful-restart retention
// across session flaps (-restart-time), appends the
// withdrawal-augmented event stream to a file, and periodically scans
// the stream with the spike+churn anomaly pipeline, printing alerts. On
// shutdown (SIGINT/SIGTERM or -run-for) it prints a TAMP picture of the
// current routing state.
//
// Example:
//
//	rexd -listen 127.0.0.1:1790 -as 25 -id 10.255.0.1 -out site.events &
//	bgpsim -scenario leak -replay 127.0.0.1:1790
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"rex/internal/bgp/fsm"
	"rex/internal/collector"
	"rex/internal/core"
	"rex/internal/core/tamp"
	"rex/internal/event"
	"rex/internal/viz"

	"net/netip"
)

// peerList collects repeated -peer flags.
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(v string) error {
	for _, addr := range strings.Split(v, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			*p = append(*p, addr)
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rexd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rexd", flag.ContinueOnError)
	var peers peerList
	var (
		listen     = fs.String("listen", "127.0.0.1:1790", "address to accept IBGP sessions on")
		localAS    = fs.Uint("as", 25, "local AS number")
		localID    = fs.String("id", "10.255.0.1", "local BGP identifier")
		out        = fs.String("out", "", "append the augmented event stream to this file (text format)")
		scanEach   = fs.Duration("scan-every", 30*time.Second, "anomaly-scan interval (0 disables)")
		maxPfx     = fs.Int("max-prefixes", 0, "tear a peer down (CEASE) past this many prefixes (0 = unlimited)")
		runFor     = fs.Duration("run-for", 0, "exit after this long (0 = until signal)")
		site       = fs.String("site", "site", "site name for the final TAMP picture")
		hold       = fs.Duration("hold", 90*time.Second, "proposed BGP hold time")
		restart    = fs.Duration("restart-time", 0, "retain a lost peer's routes this long before the withdrawal sweep (0 = 2x hold, negative = withdraw immediately)")
		minBackoff = fs.Duration("min-backoff", time.Second, "initial redial backoff for -peer sessions")
		maxBackoff = fs.Duration("max-backoff", 2*time.Minute, "backoff and idle-hold ceiling for -peer sessions")
	)
	fs.Var(&peers, "peer", "address to actively dial and maintain a session with (repeatable, comma-separable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := netip.ParseAddr(*localID)
	if err != nil {
		return fmt.Errorf("bad -id: %w", err)
	}

	var sink *eventSink
	if *out != "" {
		sink, err = newEventSink(*out)
		if err != nil {
			return err
		}
		defer sink.Close()
	}
	pipeline := core.NewPipeline(core.Config{}, 2_000_000)
	handler := func(e event.Event) {
		pipeline.Ingest(e)
		if sink != nil {
			sink.Write(e)
		}
	}

	restartTime := *restart
	if restartTime < 0 {
		restartTime = collector.RestartDisabled
	}
	logf := func(format string, args ...any) {
		fmt.Printf("rexd: "+format+"\n", args...)
	}
	c := collector.New(collector.Config{
		LocalAS:               uint32(*localAS),
		LocalID:               id,
		HoldTime:              *hold,
		WithdrawOnSessionLoss: true,
		MaxPrefixes:           *maxPfx,
		RestartTime:           restartTime,
		Logf:                  logf,
	}, handler)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("rexd: listening on %s (AS%d, id %s)\n", ln.Addr(), *localAS, id)
	serveErr := make(chan error, 1)
	go func() { serveErr <- c.Serve(ln) }()

	// Actively dialed peers: the manager redials forever with backoff and
	// hands each established session to the collector's update loop.
	var mgr *fsm.PeerManager
	if len(peers) > 0 {
		mgr = fsm.NewPeerManager(fsm.ManagerConfig{
			MinBackoff: *minBackoff,
			MaxBackoff: *maxBackoff,
			OnUp:       func(_ string, s *fsm.Session) { go c.Run(s) },
			Logf:       logf,
		})
		scfg := fsm.Config{
			LocalAS:  uint32(*localAS),
			LocalID:  id,
			HoldTime: *hold,
		}
		for _, addr := range peers {
			if err := mgr.Add(addr, scfg); err != nil {
				return fmt.Errorf("add peer %s: %w", addr, err)
			}
			fmt.Printf("rexd: dialing peer %s\n", addr)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	var timeout <-chan time.Time
	if *runFor > 0 {
		timer := time.NewTimer(*runFor)
		defer timer.Stop()
		timeout = timer.C
	}
	var ticker *time.Ticker
	var tick <-chan time.Time
	if *scanEach > 0 {
		ticker = time.NewTicker(*scanEach)
		defer ticker.Stop()
		tick = ticker.C
	}

loop:
	for {
		select {
		case <-tick:
			for _, a := range pipeline.Scan() {
				fmt.Printf("rexd: ALERT %s\n", a.Summary())
				for _, f := range a.Findings {
					fmt.Printf("rexd:   policy: %v\n", f)
				}
			}
			fmt.Printf("rexd: %d peers, %d routes, %d buffered events\n",
				len(c.Peers()), c.NumRoutes(), pipeline.Buffered())
			for _, pi := range c.PeerInfos() {
				fmt.Printf("rexd: peer %s\n", pi)
			}
			if mgr != nil {
				for _, st := range mgr.Statuses() {
					fmt.Printf("rexd: dial %s\n", st)
				}
			}
		case <-stop:
			break loop
		case <-timeout:
			break loop
		case err := <-serveErr:
			if err != nil {
				return err
			}
			break loop
		}
	}

	// Stop redialing before tearing the collector down, so shutdown is
	// not racing fresh sessions.
	if mgr != nil {
		mgr.Close()
	}

	// Final picture of the site's routing as collected.
	g := tamp.New(*site)
	for _, r := range c.Routes() {
		g.AddRoute(tamp.RouteEntry{
			Router:  r.Peer.String(),
			Nexthop: r.Attrs.Nexthop,
			ASPath:  r.Attrs.ASPath.ASNs(),
			Prefix:  r.Prefix,
		})
	}
	if g.TotalPrefixes() > 0 {
		fmt.Println("rexd: final TAMP picture:")
		fmt.Print(viz.ASCII(g.Snapshot(tamp.PruneOptions{KeepDepth: 3})))
	}
	return c.Close()
}

// eventSink appends events to a text file, serialized across the
// collector's peer goroutines.
type eventSink struct {
	mu  sync.Mutex
	f   *os.File
	bw  *bufio.Writer
	buf []byte
}

func newEventSink(path string) (*eventSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &eventSink{f: f, bw: bufio.NewWriterSize(f, 1<<16)}, nil
}

func (s *eventSink) Write(e event.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, err := event.AppendText(s.buf[:0], &e)
	if err != nil {
		return
	}
	s.buf = buf
	_, _ = s.bw.Write(buf)
}

func (s *eventSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil {
		return err
	}
	return s.f.Close()
}
