// Command rexd is the collector daemon: the Route Explorer role from the
// paper's §II. It listens for passive IBGP sessions from a site's BGP
// edge routers (or a simulator replay), and can also actively dial peers
// given with -peer, redialing forever with backoff when they fall over.
// It maintains an Adj-RIB-In per peer with graceful-restart retention
// across session flaps (-restart-time), appends the
// withdrawal-augmented event stream to a file, and feeds it through the
// streaming analysis pipeline: a sliding window (-window) whose Stemming
// decomposition and TAMP picture are snapshotted whenever the event rate
// spikes (-spike-k) or on a period (-snapshot-every), printing each
// snapshot. On shutdown (SIGINT/SIGTERM or -run-for) it prints the final
// window decomposition and a TAMP picture of the current routing state.
//
// With -journal-dir the daemon is crash-safe: every event is appended
// to a segmented, checksummed journal (fsync policy from -fsync), the
// collector's tables are checkpointed periodically (-checkpoint-every),
// and a restarted daemon recovers — newest valid checkpoint, journal
// tail replayed through the pipeline, live collection resumed — ending
// up where an uninterrupted run would be. -overload picks what happens
// when ingest outruns analysis: block (lossless), shed (drop and
// count), or spill (journal everything, shed only the analysis copy).
//
// With -metrics-addr the daemon serves its internals over HTTP:
// /metrics (Prometheus text), /metrics.json, /healthz, and
// /debug/pprof — session lifecycle counters, per-peer message/byte
// gauges, window and settle-latency metrics, and MRT ingestion skip
// counters (see DESIGN.md, "Observability"). Lifecycle logging is the
// structured key=value form from internal/obs, filtered by -log-level.
//
// Example:
//
//	rexd -listen 127.0.0.1:1790 -as 25 -id 10.255.0.1 \
//	     -metrics-addr 127.0.0.1:9099 -out site.events &
//	bgpsim -scenario leak -replay 127.0.0.1:1790
//	curl -s http://127.0.0.1:9099/metrics | grep rex_collector
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"rex/internal/bgp/fsm"
	"rex/internal/collector"
	"rex/internal/core/pipeline"
	"rex/internal/core/stemming"
	"rex/internal/core/tamp"
	"rex/internal/event"
	"rex/internal/journal"
	"rex/internal/obs"
	"rex/internal/relay"
	"rex/internal/serve"
	"rex/internal/viz"

	"net/netip"
)

// peerList collects repeated -peer flags.
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(v string) error {
	for _, addr := range strings.Split(v, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			*p = append(*p, addr)
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rexd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rexd", flag.ContinueOnError)
	var peers peerList
	var (
		listen      = fs.String("listen", "127.0.0.1:1790", "address to accept IBGP sessions on")
		localAS     = fs.Uint("as", 25, "local AS number")
		localID     = fs.String("id", "10.255.0.1", "local BGP identifier")
		out         = fs.String("out", "", "append the augmented event stream to this file (text format)")
		scanEach    = fs.Duration("scan-every", 30*time.Second, "status report interval (0 disables)")
		window      = fs.Duration("window", 15*time.Minute, "sliding analysis window (event time)")
		snapEvery   = fs.Duration("snapshot-every", 0, "emit a periodic analysis snapshot this often in event time (0 = spikes and shutdown only)")
		spikeK      = fs.Float64("spike-k", 8, "MAD multiplier for the spike trigger (negative disables)")
		maxPfx      = fs.Int("max-prefixes", 0, "tear a peer down (CEASE) past this many prefixes (0 = unlimited)")
		runFor      = fs.Duration("run-for", 0, "exit after this long (0 = until signal)")
		site        = fs.String("site", "site", "site name for the final TAMP picture")
		hold        = fs.Duration("hold", 90*time.Second, "proposed BGP hold time")
		restart     = fs.Duration("restart-time", 0, "retain a lost peer's routes this long before the withdrawal sweep (0 = 2x hold, negative = withdraw immediately)")
		minBackoff  = fs.Duration("min-backoff", time.Second, "initial redial backoff for -peer sessions")
		maxBackoff  = fs.Duration("max-backoff", 2*time.Minute, "backoff and idle-hold ceiling for -peer sessions")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /metrics.json, /healthz and /debug/pprof on this address (empty disables)")
		logLevel    = fs.String("log-level", "info", "lowest log level to emit (debug, info, warn, error)")
		journalDir  = fs.String("journal-dir", "", "durable event journal + checkpoint directory; on start, recover state from it; with -relay-listen it holds the merged stream and feed cursors (empty disables)")
		ckptEvery   = fs.Duration("checkpoint-every", 5*time.Minute, "checkpoint the collector tables (or, with -relay-listen, the receiver cursors) this often when -journal-dir is set (0 = final checkpoint only; the analysis node falls back to its 30s default)")
		fsyncFlag   = fs.String("fsync", "interval", "journal fsync policy: always, interval or never")
		overload    = fs.String("overload", "block", "intake overload policy: block (lossless, may stall sessions), shed (never blocks, drops at a full queue) or spill (never blocks, journals everything, sheds only the analysis copy)")
		workers     = fs.Int("workers", 0, "analysis worker goroutines; snapshots are byte-identical at any value (0 = GOMAXPROCS, 1 = sequential)")
		relayTo     = fs.String("relay-to", "", "stream the journal to a central analysis node at this address (requires -journal-dir; resumes from the node's ack after restarts)")
		feedIDFlag  = fs.String("feed-id", "", "stable feed identity for -relay-to (default: the -id address)")
		relayListen = fs.String("relay-listen", "", "run as the central analysis node: accept collector relay feeds on this address instead of BGP sessions")
		expectFeeds = fs.String("expect-feeds", "", "comma-separated feed roster for -relay-listen; listed feeds gate the merge and strangers are rejected (empty accepts any feed)")
		serveAddr   = fs.String("serve-addr", "", "serve the snapshot API (JSON/SVG/DOT, per-prefix drill-down, SSE stream, /readyz) on this address (empty disables)")
		serveStale  = fs.Duration("serve-stale-after", 0, "mark served snapshots stale (and /readyz not ready) once older than this; 0 = only crash-restored snapshots count as stale")
	)
	fs.Var(&peers, "peer", "address to actively dial and maintain a session with (repeatable, comma-separable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := netip.ParseAddr(*localID)
	if err != nil {
		return fmt.Errorf("bad -id: %w", err)
	}
	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return fmt.Errorf("bad -log-level: %w", err)
	}
	obs.SetLogLevel(lv)
	fsyncPol, err := journal.ParseFsyncPolicy(*fsyncFlag)
	if err != nil {
		return fmt.Errorf("bad -fsync: %w", err)
	}
	overloadPol, err := pipeline.ParseOverloadPolicy(*overload)
	if err != nil {
		return fmt.Errorf("bad -overload: %w", err)
	}

	if *metricsAddr != "" {
		srv, maddr, err := obs.Serve(*metricsAddr, obs.Default)
		if err != nil {
			return fmt.Errorf("metrics server: %w", err)
		}
		// Graceful: an in-flight scrape finishes before the process
		// exits; only a wedged one is cut after the grace period.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				srv.Close()
			}
		}()
		obs.Logf(obs.Info, "rexd", "metrics on http://%s/metrics (json at /metrics.json, pprof at /debug/pprof)", maddr)
	}

	// The analysis configuration, shared verbatim between the live
	// pipeline and the serve tier's historical replays: /api/at is
	// byte-identical with the live output only because both run the
	// exact same parameters.
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	pcfg := pipeline.Config{
		Window:        *window,
		SnapshotEvery: *snapEvery,
		SpikeK:        *spikeK,
		Site:          *site,
		Prune:         tamp.PruneOptions{KeepDepth: 3},
		Workers:       nWorkers,
	}

	// The serving tier binds before the pipeline exists so a restarted
	// daemon answers reads (from the durable last snapshot, explicitly
	// stale) while recovery is still replaying the journal — and, with a
	// journal, time-travel queries work even before the first live
	// snapshot.
	var api *serve.Server
	if *serveAddr != "" {
		api, err = startServeTier(*serveAddr, *serveStale, *journalDir, pcfg)
		if err != nil {
			return fmt.Errorf("serve tier: %w", err)
		}
	}

	var sink *eventSink
	if *out != "" {
		sink, err = newEventSink(*out)
		if err != nil {
			return err
		}
		defer sink.Close()
	}
	// The streaming engine: a sliding window over the live event stream,
	// snapshotted on rate spikes (and optionally on a period), plus a
	// final decomposition and TAMP picture at shutdown.
	p := pipeline.New(pcfg)
	if *relayListen != "" {
		if *relayTo != "" {
			return fmt.Errorf("-relay-listen and -relay-to are mutually exclusive roles")
		}
		var rcfg relay.ReceiverConfig
		if *journalDir != "" {
			rcfg.Dir = *journalDir
			rcfg.Fsync = fsyncPol
			rcfg.CheckpointEvery = *ckptEvery // <=0 falls back to the relay default
			rcfg.Window = *window
		}
		return runAnalysisNode(*relayListen, splitFeeds(*expectFeeds), p, *runFor, rcfg, api)
	}
	var finalSnap pipeline.Snapshot
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for s := range p.Snapshots() {
			if api != nil {
				api.Publish(s, nil)
			}
			if s.Trigger == pipeline.TriggerFinal {
				finalSnap = s
				continue
			}
			printSnapshot(s)
		}
	}()
	// Events flow collector → intake → (journal, pipeline). The intake
	// is created after recovery below — it needs the journal hook — but
	// no session can deliver an event before the listener opens, so the
	// handler closure safely captures the variable.
	var in *pipeline.Intake
	handler := func(e event.Event) {
		in.Offer(e)
		if sink != nil {
			sink.Write(e)
		}
	}

	restartTime := *restart
	if restartTime < 0 {
		restartTime = collector.RestartDisabled
	}
	c := collector.New(collector.Config{
		LocalAS:               uint32(*localAS),
		LocalID:               id,
		HoldTime:              *hold,
		WithdrawOnSessionLoss: true,
		MaxPrefixes:           *maxPfx,
		RestartTime:           restartTime,
		Logf:                  obs.Printer("collector"),
	}, handler)

	// Recover durable state before the first session can speak: restore
	// checkpointed tables into the collector, seed and replay the
	// pipeline, then resume journaling where the last process stopped.
	var dur *durability
	intakeCfg := pipeline.IntakeConfig{Policy: overloadPol}
	if *journalDir != "" {
		dur, err = openDurability(*journalDir, fsyncPol, *window, p, c)
		if err != nil {
			return fmt.Errorf("journal recovery: %w", err)
		}
		intakeCfg.Journal = dur.journalEvent
	}
	in = pipeline.NewIntake(intakeCfg, p)

	// The relay feed streams the journal to a central analysis node,
	// resuming at the node's acked cursor after any interruption. The
	// journal is the source of truth: appends wake the feed, and the
	// checkpoint cycle never trims past the node's ack.
	var feed *relay.Feed
	if *relayTo != "" {
		if dur == nil {
			return fmt.Errorf("-relay-to requires -journal-dir (the journal is the relay's source and resume log)")
		}
		fid := *feedIDFlag
		if fid == "" {
			fid = id.String()
		}
		feed = relay.NewFeed(relay.FeedConfig{
			ID: fid, Dir: *journalDir, Addr: *relayTo,
			// Live events carry the collector's own clock, so while
			// caught up the feed can promise the merge "nothing earlier
			// than now" and keep the analysis node's gate open.
			IdleWatermark: time.Now,
		})
		dur.setRelay(feed.Wake, feed.Acked)
		go feed.Run()
		obs.Logf(obs.Info, "rexd", "relaying journal to %s as feed %q", *relayTo, fid)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	obs.Logf(obs.Info, "rexd", "listening on %s (AS%d, id %s)", ln.Addr(), *localAS, id)
	serveErr := make(chan error, 1)
	go func() { serveErr <- c.Serve(ln) }()

	// Actively dialed peers: the manager redials forever with backoff and
	// hands each established session to the collector's update loop.
	var mgr *fsm.PeerManager
	if len(peers) > 0 {
		mgr = fsm.NewPeerManager(fsm.ManagerConfig{
			MinBackoff: *minBackoff,
			MaxBackoff: *maxBackoff,
			OnUp:       func(_ string, s *fsm.Session) { go c.Run(s) },
			Logf:       obs.Printer("peermanager"),
		})
		scfg := fsm.Config{
			LocalAS:  uint32(*localAS),
			LocalID:  id,
			HoldTime: *hold,
		}
		for _, addr := range peers {
			if err := mgr.Add(addr, scfg); err != nil {
				return fmt.Errorf("add peer %s: %w", addr, err)
			}
			obs.Logf(obs.Info, "rexd", "dialing peer %s", addr)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	var timeout <-chan time.Time
	if *runFor > 0 {
		timer := time.NewTimer(*runFor)
		defer timer.Stop()
		timeout = timer.C
	}
	var ticker *time.Ticker
	var tick <-chan time.Time
	if *scanEach > 0 {
		ticker = time.NewTicker(*scanEach)
		defer ticker.Stop()
		tick = ticker.C
	}
	var ckptTick <-chan time.Time
	if dur != nil && *ckptEvery > 0 {
		ckptTicker := time.NewTicker(*ckptEvery)
		defer ckptTicker.Stop()
		ckptTick = ckptTicker.C
	}

loop:
	for {
		select {
		case <-ckptTick:
			if err := dur.checkpoint(c); err != nil {
				// A failing disk degrades durability, not collection.
				obs.Logf(obs.Error, "rexd", "checkpoint: %v", err)
			}
		case <-tick:
			obs.Logf(obs.Info, "rexd", "%d peers, %d routes", len(c.Peers()), c.NumRoutes())
			for _, pi := range c.PeerInfos() {
				obs.Logf(obs.Info, "rexd", "peer %s", pi)
			}
			if mgr != nil {
				for _, st := range mgr.Statuses() {
					obs.Logf(obs.Info, "rexd", "dial %s", st)
				}
			}
		case <-stop:
			break loop
		case <-timeout:
			break loop
		case err := <-serveErr:
			if err != nil {
				return err
			}
			break loop
		}
	}

	// Drain the serving tier FIRST, before any pipeline teardown:
	// in-flight readers finish against the last published snapshot and
	// SSE clients get a terminal bye while the backend is still whole —
	// draining last would hand them connection resets from a server
	// whose feed is already gone.
	drainServeTier(api)

	// Stop redialing before tearing the collector down, so shutdown is
	// not racing fresh sessions.
	if mgr != nil {
		mgr.Close()
	}

	// Close the collector first so in-flight events still reach the
	// intake, drain the intake into the journal and pipeline, take the
	// final checkpoint over the settled tables, then stop the pipeline
	// and collect its final word.
	closeErr := c.Close()
	in.Close()
	if dur != nil {
		if err := dur.close(c); err != nil {
			obs.Logf(obs.Error, "rexd", "final checkpoint: %v", err)
			if closeErr == nil {
				closeErr = err
			}
		}
	}
	if feed != nil {
		// Best-effort drain: the shutdown sweep above just journaled its
		// last events, so give the feed a bounded window to stream the
		// tail and collect acks before cutting the connection. Anything
		// still unacked stays in the journal (the final checkpoint's
		// trim respected the ack floor); the next start resumes
		// relaying it. Against a durable analysis node acks lag its
		// checkpoint cadence, so hitting the deadline is normal there —
		// the tail is simply resent on the next connect.
		head := dur.w.NextSeq()
		deadline := time.Now().Add(5 * time.Second)
		for feed.Acked() < head && time.Now().Before(deadline) {
			feed.Wake()
			time.Sleep(20 * time.Millisecond)
		}
		if a := feed.Acked(); a < head {
			obs.Logf(obs.Warn, "rexd", "relay drain timed out at seq %d of %d; journal retains the rest", a, head)
		}
		feed.Close()
	}
	p.Close()
	<-snapDone
	printFinal(finalSnap)
	return closeErr
}

// printFinal reports the shutdown snapshot: the final window
// decomposition and TAMP picture, when there is anything to show.
func printFinal(finalSnap pipeline.Snapshot) {
	if len(finalSnap.Components) > 0 {
		fmt.Printf("rexd: final window: %d events\n", finalSnap.Events)
		printComponents(finalSnap.Components)
	}
	if finalSnap.Picture != nil && finalSnap.Picture.Total > 0 {
		fmt.Println("rexd: final TAMP picture:")
		fmt.Print(viz.ASCII(finalSnap.Picture))
	}
}

// printSnapshot reports one pipeline snapshot on stdout.
func printSnapshot(s pipeline.Snapshot) {
	switch s.Trigger {
	case pipeline.TriggerSpike:
		fmt.Printf("rexd: SPIKE %d events (peak %d/bucket) from %s: window of %d events decomposes to %d component(s)\n",
			s.Spike.Total, s.Spike.Peak, s.Spike.Start.Format(time.RFC3339), s.Events, len(s.Components))
	default:
		fmt.Printf("rexd: snapshot at %s: %d events in window, %d component(s)\n",
			s.At.Format(time.RFC3339), s.Events, len(s.Components))
	}
	printComponents(s.Components)
}

// printComponents lists the strongest components, at most three.
func printComponents(comps []stemming.Component) {
	for i, comp := range comps {
		if i == 3 {
			fmt.Printf("rexd:   ... and %d more\n", len(comps)-i)
			break
		}
		fmt.Printf("rexd:   component: stem %v, %d prefixes, %d events\n",
			comp.Stem, len(comp.Prefixes), comp.NumEvents())
	}
}

// eventSink appends events to a text file, serialized across the
// collector's peer goroutines.
type eventSink struct {
	mu  sync.Mutex
	f   *os.File
	bw  *bufio.Writer
	buf []byte
}

func newEventSink(path string) (*eventSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &eventSink{f: f, bw: bufio.NewWriterSize(f, 1<<16)}, nil
}

func (s *eventSink) Write(e event.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, err := event.AppendText(s.buf[:0], &e)
	if err != nil {
		return
	}
	s.buf = buf
	_, _ = s.bw.Write(buf)
}

func (s *eventSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil {
		return err
	}
	return s.f.Close()
}
