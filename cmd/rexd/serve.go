// rexd's serving tier: with -serve-addr the daemon exposes the live
// analysis over HTTP/SSE (internal/serve) in both roles. The standalone
// collector publishes straight from its snapshot drain loop; the
// analysis node publishes through the receiver's SnapshotSink, so every
// served snapshot carries feed health and the serve tier's durable
// last-snapshot file is covered by the receiver's checkpoint discipline.
package main

import (
	"context"
	"net"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/obs"
	"rex/internal/relay"
	"rex/internal/serve"
)

// testServeBound, when set by a test, receives the serving tier's bound
// address (the -serve-addr flag may end in :0).
var testServeBound func(net.Addr)

// startServeTier builds the serving tier and binds it. dir may be empty
// (no durable last-snapshot file, and no time travel: /api/at needs the
// journal to replay from). replay carries the live pipeline's analysis
// parameters so a replayed instant reproduces exactly what the live
// pipeline computed at that time.
func startServeTier(addr string, staleAfter time.Duration, dir string, replay pipeline.Config) (*serve.Server, error) {
	api := serve.New(serve.Config{
		StaleAfter: staleAfter,
		Dir:        dir,
		HistoryDir: dir,
		Replay:     replay,
	})
	bound, err := api.Serve(addr)
	if err != nil {
		api.Close()
		return nil, err
	}
	if dir != "" {
		obs.Logf(obs.Info, "rexd", "serving API on http://%s/ (snapshot, picture.svg, components, stream, time travel at /api/at)", bound)
	} else {
		obs.Logf(obs.Info, "rexd", "serving API on http://%s/ (snapshot, picture.svg, components, stream)", bound)
	}
	if testServeBound != nil {
		testServeBound(bound)
	}
	return api, nil
}

// drainServeTier gracefully drains the serving tier with a bounded
// deadline. Called on the shutdown path BEFORE the pipeline is torn
// down, so in-flight readers finish against the last snapshot and SSE
// clients get a terminal bye instead of a connection reset.
func drainServeTier(api *serve.Server) {
	if api == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := api.Drain(ctx); err != nil {
		obs.Logf(obs.Warn, "rexd", "serve drain: %v", err)
	}
}

// feedHealth maps the receiver's feed statuses to the serve tier's
// wire-independent form.
func feedHealth(feeds []relay.FeedStatus) []serve.FeedHealth {
	out := make([]serve.FeedHealth, 0, len(feeds))
	for _, f := range feeds {
		out = append(out, serve.FeedHealth{
			ID: f.ID, Connected: f.Connected, Stale: f.Stale, LastHeard: f.LastHeard,
		})
	}
	return out
}
