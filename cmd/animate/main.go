// Command animate renders a TAMP animation from a captured incident: a
// baseline routing table (MRT TABLE_DUMP_V2) plus an event stream, played
// back at the paper's fixed 30 s / 25 fps, written as SVG frames with the
// Figure 3 visual cues (edge colors, gray max shadows, animation clock,
// selected-edge prefix plot).
//
// Examples:
//
//	bgpsim -scenario leak -rib base.mrt -events leak.events
//	animate -rib base.mrt -in leak.events -o frames/ -every 25
//	animate -rib base.mrt -in leak.events -select 'AS11423->AS209' -o frames/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rex/internal/core/tamp"
	"rex/internal/streamfile"
	"rex/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "animate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("animate", flag.ContinueOnError)
	var (
		ribPath = fs.String("rib", "", "baseline RIB (MRT table dump)")
		in      = fs.String("in", "", "event stream file")
		outDir  = fs.String("o", "frames", "output directory for SVG frames")
		every   = fs.Int("every", 25, "write every Nth frame (25 = 1 per second of play time)")
		sel     = fs.String("select", "", `edge to plot, as "FROM->TO" using node names (e.g. "AS11423->AS209")`)
		site    = fs.String("site", "site", "site name for the root node")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	if *every <= 0 {
		*every = 25
	}

	var base []tamp.RouteEntry
	if *ribPath != "" {
		routes, err := streamfile.ReadRIB(*ribPath)
		if err != nil {
			return err
		}
		for _, r := range routes {
			base = append(base, tamp.RouteEntry{
				Router:  r.Peer.String(),
				Nexthop: r.Attrs.Nexthop,
				ASPath:  r.Attrs.ASPath.ASNs(),
				Prefix:  r.Prefix,
			})
		}
	}
	events, err := streamfile.ReadEvents(*in)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: no events", *in)
	}

	var selected tamp.EdgeRef
	if *sel != "" {
		selected, err = parseEdge(*sel)
		if err != nil {
			return err
		}
	}

	anim := tamp.Animate(*site, base, events, tamp.AnimationConfig{})
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	written := 0
	for idx := 0; idx < anim.NumFrames; idx += *every {
		svg := viz.AnimationFrameSVG(anim, idx, selected)
		name := filepath.Join(*outDir, fmt.Sprintf("frame-%04d.svg", idx))
		if err := os.WriteFile(name, []byte(svg), 0o644); err != nil {
			return err
		}
		written++
	}
	fmt.Printf("animate: %d events over %v -> %d frames in %s (%d changed)\n",
		len(events), anim.End.Sub(anim.Start), written, *outDir, len(anim.Frames))
	return nil
}

// parseEdge parses "FROM->TO" where each side is a rendered node name:
// "AS209", a router name, a nexthop address, or a prefix.
func parseEdge(s string) (tamp.EdgeRef, error) {
	from, to, ok := strings.Cut(s, "->")
	if !ok {
		return tamp.EdgeRef{}, fmt.Errorf("edge %q: want FROM->TO", s)
	}
	f, err := parseNode(strings.TrimSpace(from))
	if err != nil {
		return tamp.EdgeRef{}, err
	}
	t, err := parseNode(strings.TrimSpace(to))
	if err != nil {
		return tamp.EdgeRef{}, err
	}
	return tamp.EdgeRef{From: f, To: t}, nil
}

func parseNode(name string) (tamp.NodeID, error) {
	if name == "" {
		return tamp.NodeID{}, fmt.Errorf("empty node name")
	}
	switch {
	case strings.HasPrefix(name, "AS"):
		return tamp.NodeID{Kind: tamp.KindAS, Name: name[2:]}, nil
	case strings.Contains(name, "/"):
		return tamp.NodeID{Kind: tamp.KindPrefix, Name: name}, nil
	case strings.Count(name, ".") == 3 && !strings.ContainsAny(name, "abcdefghijklmnopqrstuvwxyz"):
		// Dotted quad: routers are identified by their peering address in
		// captured streams, so try router first, falling back is not
		// possible without the graph; prefer nexthop only with an
		// explicit prefix "nh:".
		return tamp.NodeID{Kind: tamp.KindRouter, Name: name}, nil
	case strings.HasPrefix(name, "nh:"):
		return tamp.NodeID{Kind: tamp.KindNexthop, Name: name[3:]}, nil
	default:
		return tamp.NodeID{Kind: tamp.KindRouter, Name: name}, nil
	}
}
