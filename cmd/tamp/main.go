// Command tamp renders TAMP pictures ("one picture says 1,000,000
// routes"): it loads a routing table from an MRT TABLE_DUMP_V2 snapshot
// or generates one of the built-in paper scenarios, prunes it, and writes
// ASCII, Graphviz DOT, or SVG.
//
// Examples:
//
//	tamp -scenario berkeley-misconfig                 # Figure 2 (ASCII)
//	tamp -scenario berkeley-misconfig -keep-depth 3   # Figure 5
//	tamp -scenario berkeley -community 2152:65297     # Figure 6
//	tamp -rib table.mrt -format svg -o picture.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"rex/internal/bgp"
	"rex/internal/core/tamp"
	"rex/internal/sim"
	"rex/internal/streamfile"
	"rex/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tamp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tamp", flag.ContinueOnError)
	var (
		ribPath   = fs.String("rib", "", "MRT TABLE_DUMP_V2 snapshot to load")
		scenario  = fs.String("scenario", "", "built-in scenario: berkeley, berkeley-misconfig, ispanon")
		format    = fs.String("format", "ascii", "output format: ascii, dot, svg")
		threshold = fs.Float64("threshold", tamp.DefaultThreshold, "prune edges below this fraction of total prefixes")
		keepDepth = fs.Int("keep-depth", 0, "hierarchical pruning: always keep edges within this depth of the root")
		community = fs.String("community", "", "map only routes tagged with this community (asn:value)")
		site      = fs.String("site", "", "site name for the root node (default per source)")
		out       = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var filter *bgp.Community
	if *community != "" {
		c, err := bgp.ParseCommunity(*community)
		if err != nil {
			return err
		}
		filter = &c
	}

	g, err := buildGraph(*ribPath, *scenario, *site, filter)
	if err != nil {
		return err
	}
	pic := g.Snapshot(tamp.PruneOptions{Threshold: *threshold, KeepDepth: *keepDepth})

	var rendered string
	switch *format {
	case "ascii":
		rendered = viz.ASCII(pic)
	case "dot":
		rendered = viz.DOT(pic, viz.DOTOptions{ShowPercent: true})
	case "svg":
		rendered = viz.SVG(pic)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if *out == "" {
		_, err := fmt.Print(rendered)
		return err
	}
	return os.WriteFile(*out, []byte(rendered), 0o644)
}

func buildGraph(ribPath, scenario, site string, filter *bgp.Community) (*tamp.Graph, error) {
	switch {
	case ribPath != "":
		routes, err := streamfile.ReadRIB(ribPath)
		if err != nil {
			return nil, err
		}
		if site == "" {
			site = "rib"
		}
		g := tamp.New(site)
		for _, r := range routes {
			if filter != nil && !r.Attrs.HasCommunity(*filter) {
				continue
			}
			g.AddRoute(tamp.RouteEntry{
				Router:  r.Peer.String(),
				Nexthop: r.Attrs.Nexthop,
				ASPath:  r.Attrs.ASPath.ASNs(),
				Prefix:  r.Prefix,
			})
		}
		return g, nil
	case scenario != "":
		routes, name, err := scenarioRoutes(scenario)
		if err != nil {
			return nil, err
		}
		if site == "" {
			site = name
		}
		g := tamp.New(site)
		for _, r := range routes {
			if filter != nil && !r.Attrs.HasCommunity(*filter) {
				continue
			}
			g.AddRoute(r.TAMPEntry())
		}
		return g, nil
	default:
		return nil, fmt.Errorf("one of -rib or -scenario is required")
	}
}

func scenarioRoutes(name string) ([]sim.SiteRoute, string, error) {
	switch name {
	case "berkeley":
		b := sim.Berkeley(sim.BerkeleyConfig{})
		return b.BaselineRoutes(), "berkeley", nil
	case "berkeley-misconfig":
		b := sim.Berkeley(sim.BerkeleyConfig{Misconfigured: true})
		return b.BaselineRoutes(), "berkeley", nil
	case "ispanon":
		is := sim.ISPAnon(sim.ISPAnonConfig{})
		return is.BaselineRoutes(), "isp-anon", nil
	default:
		return nil, "", fmt.Errorf("unknown scenario %q", name)
	}
}
