// Package rex is a from-scratch Go implementation of the system described
// in "Internet Routing Anomaly Detection and Visualization" (Wong,
// Jacobson, Alaettinoglu — DSN 2005): the TAMP visualization algorithm
// ("one picture says 1,000,000 routes"), the Stemming anomaly-detection
// algorithm, and the collection substrate they run on — a passive IBGP
// collector that augments withdrawals with their original path attributes.
//
// The facade re-exports the library's primary types and entry points; the
// full surface lives in the internal packages:
//
//   - internal/bgp, internal/bgp/fsm: BGP-4 wire codec and live sessions
//   - internal/rib: Adj-RIB-In / Loc-RIB and the BGP decision process
//   - internal/event: the augmented event stream and rate analysis
//   - internal/core/tamp, internal/core/stemming: the paper's algorithms
//   - internal/core: the real-time anomaly pipeline
//   - internal/collector: the REX-like passive IBGP collector
//   - internal/mrt: MRT (RFC 6396) import/export
//   - internal/igp, internal/policy, internal/traffic: the §III-D data
//     sources (link-state IGP, router configurations, NetFlow-like
//     traffic)
//   - internal/sim: the Internet simulator regenerating the paper's case
//     studies and performance tables
//   - internal/viz: DOT/SVG/ASCII renderers and animation frames
//
// Quickstart:
//
//	g := rex.NewTAMP("my-site")
//	for _, r := range routes {
//	    g.AddRoute(r)
//	}
//	pic := g.Snapshot(rex.PruneOptions{})            // Figure-2-style picture
//	fmt.Print(rex.ASCII(pic))
//
//	comps := rex.Stemming(events, rex.StemmingConfig{}) // find the incidents
//	anim := rex.Animate("my-site", base, comps[0], events)
package rex

import (
	"net"
	"net/netip"

	"rex/internal/collector"
	"rex/internal/core"
	"rex/internal/core/stemming"
	"rex/internal/core/tamp"
	"rex/internal/event"
	"rex/internal/viz"
)

// Event-stream types.
type (
	// Event is one BGP routing event (announcement or augmented
	// withdrawal).
	Event = event.Event
	// Stream is an ordered sequence of events.
	Stream = event.Stream
	// RateSeries is a bucketed event-rate time series (Figure 8).
	RateSeries = event.RateSeries
)

// Event types.
const (
	Announce = event.Announce
	Withdraw = event.Withdraw
)

// TAMP types.
type (
	// TAMPGraph is the mutable merged TAMP graph.
	TAMPGraph = tamp.Graph
	// RouteEntry is TAMP's input: one router's RIB entry.
	RouteEntry = tamp.RouteEntry
	// Picture is a pruned TAMP snapshot.
	Picture = tamp.Picture
	// PruneOptions controls snapshot pruning (threshold, hierarchical).
	PruneOptions = tamp.PruneOptions
	// Animation is a rendered TAMP animation.
	Animation = tamp.Animation
	// AnimationConfig sets play duration and frame rate (defaults: the
	// paper's 30 s at 25 fps).
	AnimationConfig = tamp.AnimationConfig
)

// Stemming types.
type (
	// Component is one strongly correlated component of an event stream.
	Component = stemming.Component
	// Stem is the inferred problem location.
	Stem = stemming.Stem
	// StemmingConfig tunes the decomposition.
	StemmingConfig = stemming.Config
)

// Pipeline types.
type (
	// Alert is one detected incident (spike or churn).
	Alert = core.Alert
	// DetectorConfig tunes the anomaly pipeline.
	DetectorConfig = core.Config
	// Detector scans event streams for anomalies.
	Detector = core.Detector
	// Pipeline buffers a live feed and scans on demand.
	Pipeline = core.Pipeline
)

// Collector types.
type (
	// Collector is the passive IBGP collector (the paper's REX role).
	Collector = collector.Collector
	// CollectorConfig parameterizes it.
	CollectorConfig = collector.Config
	// Recorder is a concurrency-safe event accumulator handler.
	Recorder = collector.Recorder
)

// NewTAMP returns an empty TAMP graph for the named site.
func NewTAMP(site string) *TAMPGraph { return tamp.New(site) }

// Stemming decomposes a stream into correlated components, strongest
// first.
func Stemming(s Stream, cfg StemmingConfig) []Component {
	return stemming.Analyze(s, cfg)
}

// Animate builds a TAMP animation of events over a baseline routing
// state, using the paper's defaults (30 s play time, 25 fps).
func Animate(site string, baseline []RouteEntry, events Stream, cfg AnimationConfig) *Animation {
	return tamp.Animate(site, baseline, events, cfg)
}

// Rate buckets a stream into an event-rate series.
var Rate = event.Rate

// OriginConflicts finds prefixes announced with multiple origin ASes
// (MOAS) — the route-hijacking signature.
var OriginConflicts = event.OriginConflicts

// OriginConflict is one MOAS finding.
type OriginConflict = event.OriginConflict

// NewDetector builds the spike+churn anomaly detector.
func NewDetector(cfg DetectorConfig) *Detector { return core.NewDetector(cfg) }

// NewPipeline builds a buffering live pipeline.
func NewPipeline(cfg DetectorConfig, maxBuffered int) *Pipeline {
	return core.NewPipeline(cfg, maxBuffered)
}

// NewRecorder returns an event accumulator usable as a collector handler.
func NewRecorder() *Recorder { return collector.NewRecorder() }

// ListenAndCollect starts a collector accepting IBGP sessions on addr
// (e.g. ":179", "127.0.0.1:1790", or "127.0.0.1:0" for an ephemeral
// port) and returns it with the bound address. Serve errors after startup
// are discarded; Close the returned collector to stop.
func ListenAndCollect(addr string, cfg CollectorConfig, handler func(Event)) (*Collector, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	c := collector.New(cfg, handler)
	go func() { _ = c.Serve(ln) }()
	return c, ln.Addr(), nil
}

// Rendering helpers.
var (
	// DOT renders a picture as Graphviz source.
	DOT = viz.DOT
	// SVG renders a picture with the built-in layered layout.
	SVG = viz.SVG
	// ASCII renders a picture as an indented terminal tree.
	ASCII = viz.ASCII
	// AnimationFrameSVG renders one animation frame with the paper's
	// visual cues.
	AnimationFrameSVG = viz.AnimationFrameSVG
)

// MustPrefix parses a CIDR prefix, panicking on error (for tests and
// examples).
func MustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// MustAddr parses an IP address, panicking on error.
func MustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }
