package rex_test

import (
	"strings"
	"testing"
	"time"

	"rex"
	"rex/internal/bgp"
	"rex/internal/bgp/fsm"
	"rex/internal/sim"
	"rex/internal/viz"

	"net/netip"
)

// TestFacadeTAMP exercises the public TAMP surface end to end.
func TestFacadeTAMP(t *testing.T) {
	g := rex.NewTAMP("site")
	for i := 0; i < 30; i++ {
		g.AddRoute(rex.RouteEntry{
			Router:  "edge1",
			Nexthop: rex.MustAddr("10.0.0.66"),
			ASPath:  []uint32{11423, 209},
			Prefix:  netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i), 0, 0}), 16),
		})
	}
	g.AddRoute(rex.RouteEntry{
		Router:  "edge2",
		Nexthop: rex.MustAddr("10.0.0.90"),
		ASPath:  []uint32{7018},
		Prefix:  rex.MustPrefix("12.1.1.0/24"),
	})
	pic := g.Snapshot(rex.PruneOptions{})
	if pic.Total != 31 {
		t.Fatalf("total = %d", pic.Total)
	}
	for _, render := range []string{rex.ASCII(pic), rex.SVG(pic)} {
		if !strings.Contains(render, "AS11423") {
			t.Error("render missing AS11423")
		}
	}
	// Hierarchical pruning keeps the light edge2 branch that the default
	// threshold drops.
	hier := g.Snapshot(rex.PruneOptions{KeepDepth: 3})
	if len(hier.Edges) <= len(pic.Edges) {
		t.Errorf("hierarchical pruning kept %d edges, default %d", len(hier.Edges), len(pic.Edges))
	}
	if rex.DOT(pic, viz.DOTOptions{}) == "" {
		t.Error("empty DOT")
	}
}

// TestFacadeStemmingAndDetector runs the detection path via the facade.
func TestFacadeStemmingAndDetector(t *testing.T) {
	t0 := time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)
	var s rex.Stream
	for i := 0; i < 100; i++ {
		s = append(s, rex.Event{
			Time: t0.Add(time.Duration(i) * time.Second),
			Type: rex.Withdraw,
			Peer: rex.MustAddr("10.0.0.1"),
			Attrs: &bgp.PathAttrs{
				ASPath:  bgp.Sequence(11423, 209, uint32(1000+i)),
				Nexthop: rex.MustAddr("10.0.0.66"),
			},
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i), 0, 0}), 16),
		})
	}
	comps := rex.Stemming(s, rex.StemmingConfig{})
	if len(comps) == 0 {
		t.Fatal("no components")
	}
	if comps[0].Stem.To.AS != 209 {
		t.Errorf("stem = %v", comps[0].Stem)
	}
	rate := rex.Rate(s, time.Minute)
	if len(rate.Counts) == 0 {
		t.Error("no rate buckets")
	}

	p := rex.NewPipeline(rex.DetectorConfig{ChurnMinEvents: 10}, 1000)
	for _, e := range s {
		p.Ingest(e)
	}
	if alerts := p.Scan(); len(alerts) == 0 {
		t.Error("pipeline found nothing")
	}
}

// TestFacadeAnimate drives Animate + frame rendering via the facade.
func TestFacadeAnimate(t *testing.T) {
	t0 := time.Date(2002, 7, 1, 0, 0, 0, 0, time.UTC)
	base := []rex.RouteEntry{{
		Router:  "core1",
		Nexthop: rex.MustAddr("10.3.4.5"),
		ASPath:  []uint32{2},
		Prefix:  rex.MustPrefix("4.5.0.0/16"),
	}}
	events := rex.Stream{
		{Time: t0, Type: rex.Withdraw, Peer: rex.MustAddr("10.0.0.1"), Prefix: rex.MustPrefix("4.5.0.0/16"),
			Attrs: &bgp.PathAttrs{ASPath: bgp.Sequence(2), Nexthop: rex.MustAddr("10.3.4.5")}},
		{Time: t0.Add(10 * time.Second), Type: rex.Announce, Peer: rex.MustAddr("10.0.0.1"), Prefix: rex.MustPrefix("4.5.0.0/16"),
			Attrs: &bgp.PathAttrs{ASPath: bgp.Sequence(2), Nexthop: rex.MustAddr("10.3.4.5")}},
	}
	anim := rex.Animate("site", base, events, rex.AnimationConfig{})
	if anim.NumFrames != 750 {
		t.Fatalf("frames = %d", anim.NumFrames)
	}
	svg := rex.AnimationFrameSVG(anim, 0, anim.Frames[0].Changes[0].Edge)
	if !strings.Contains(svg, "<svg") {
		t.Error("bad frame SVG")
	}
}

// TestFacadeCollector runs a live collector through the facade.
func TestFacadeCollector(t *testing.T) {
	rec := rex.NewRecorder()
	coll, addr, err := rex.ListenAndCollect("127.0.0.1:0", rex.CollectorConfig{
		LocalAS: 25,
		LocalID: rex.MustAddr("10.255.0.1"),
	}, rec.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()

	sess, err := fsm.Dial(addr.String(), fsm.Config{LocalAS: 25, LocalID: rex.MustAddr("10.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	err = sess.Send(&bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.Sequence(11423, 209),
			Nexthop: rex.MustAddr("10.0.0.66"),
		},
		NLRI: []netip.Prefix{rex.MustPrefix("20.1.0.0/16")},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rec.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	events := rec.Events()
	if len(events) != 1 || events[0].Type != rex.Announce {
		t.Fatalf("events = %v", events)
	}
	if coll.NumRoutes() != 1 {
		t.Errorf("NumRoutes = %d", coll.NumRoutes())
	}
}

// TestScenarioGroundTruthViaFacade ties the simulator's §IV-D scenario to
// the facade detection API: the public path a downstream user would take.
func TestScenarioGroundTruthViaFacade(t *testing.T) {
	b := sim.Berkeley(sim.BerkeleyConfig{Misconfigured: true})
	sc := sim.PeerLeakScenario(b, 1, time.Date(2003, 12, 1, 0, 0, 0, 0, time.UTC))
	comps := rex.Stemming(sc.Events, rex.StemmingConfig{MaxComponents: 1})
	if len(comps) != 1 {
		t.Fatal("no component")
	}
	leakedASes := map[uint32]bool{11422: true, 10927: true, 1909: true, 195: true, 2152: true, 3356: true}
	if !leakedASes[comps[0].Stem.From.AS] && !leakedASes[comps[0].Stem.To.AS] {
		t.Errorf("stem %v not on leaked path", comps[0].Stem)
	}
}
