// Quickstart: the two algorithms on small hand-built data.
//
//  1. TAMP — build a graph from a handful of RIB entries (the paper's
//     Figure 1 example) and print the merged, weighted picture.
//  2. Stemming — run anomaly detection over the exact route withdrawals
//     of the paper's Figure 4 and recover the failure location 11423-209.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"rex"
	"rex/internal/bgp"
)

func main() {
	tampDemo()
	stemmingDemo()
}

// tampDemo reproduces Figure 1: routers X and Y merge into one graph
// whose NexthopA-AS1 edge carries the set UNION of prefixes (4, not 6).
func tampDemo() {
	g := rex.NewTAMP("figure-1")
	nexthopA := rex.MustAddr("10.0.0.65")
	for _, p := range []string{"1.2.1.0/24", "1.2.2.0/24", "1.2.3.0/24"} {
		g.AddRoute(rex.RouteEntry{Router: "X", Nexthop: nexthopA, ASPath: []uint32{1}, Prefix: rex.MustPrefix(p)})
	}
	for _, p := range []string{"1.2.2.0/24", "1.2.3.0/24", "1.2.4.0/24"} {
		g.AddRoute(rex.RouteEntry{Router: "Y", Nexthop: nexthopA, ASPath: []uint32{1}, Prefix: rex.MustPrefix(p)})
	}
	pic := g.Snapshot(rex.PruneOptions{Threshold: -1}) // no pruning: show everything
	fmt.Println("== TAMP: merged picture of routers X and Y ==")
	fmt.Print(rex.ASCII(pic))
	fmt.Println()
}

// stemmingDemo feeds the Figure 4 withdrawal spike to Stemming.
func stemmingDemo() {
	t0 := time.Date(2003, 8, 1, 10, 0, 0, 0, time.UTC)
	w := func(i int, peer, nh, prefix string, asns ...uint32) rex.Event {
		return rex.Event{
			Time: t0.Add(time.Duration(i) * time.Second), Type: rex.Withdraw,
			Peer: rex.MustAddr(peer), Prefix: rex.MustPrefix(prefix),
			Attrs: &bgp.PathAttrs{
				Origin:  bgp.OriginIGP,
				ASPath:  bgp.Sequence(asns...),
				Nexthop: rex.MustAddr(nh),
			},
		}
	}
	spike := rex.Stream{
		w(0, "128.32.1.3", "128.32.0.70", "192.96.10.0/24", 11423, 209, 701, 1299, 5713),
		w(1, "128.32.1.3", "128.32.0.66", "207.191.23.0/24", 11423, 11422, 209, 4519),
		w(2, "128.32.1.200", "128.32.0.90", "192.96.10.0/24", 11423, 209, 701, 1299, 5713),
		w(3, "128.32.1.200", "128.32.0.90", "212.22.132.0/23", 11423, 209, 1239, 3228, 21408),
		w(4, "128.32.1.3", "128.32.0.66", "203.14.156.0/24", 11423, 209, 701, 705),
		w(5, "128.32.1.3", "128.32.0.66", "209.5.188.0/24", 11423, 11422, 209, 1239, 3602),
		w(6, "128.32.1.3", "128.32.0.66", "12.2.41.0/24", 11423, 209, 7018, 13606),
		w(7, "128.32.1.3", "128.32.0.66", "12.96.77.0/24", 11423, 209, 7018, 13606),
		w(8, "128.32.1.3", "128.32.0.66", "62.80.64.0/20", 11423, 209, 1239, 5400, 15410),
		w(9, "128.32.1.200", "128.32.0.90", "62.80.64.0/20", 11423, 209, 1239, 5400, 15410),
	}
	fmt.Println("== Stemming: the paper's Figure 4 withdrawal spike ==")
	components := rex.Stemming(spike, rex.StemmingConfig{})
	for i, c := range components {
		fmt.Printf("component %d: problem location %v (%d events, %d prefixes)\n",
			i+1, c.Stem, c.NumEvents(), len(c.Prefixes))
	}
	if len(components) > 0 {
		fmt.Printf("\nThe failure sits on the last edge of the shared path: %v\n", components[0].Stem)
	}
}
