// Campus load-balance audit: the paper's Berkeley case studies §IV-A/B/C
// on the simulated campus.
//
//  1. Figure 2 — the default TAMP picture reveals the misconfigured
//     commodity split (78% vs 5% instead of 50/50).
//  2. Figure 5 — hierarchical pruning exposes a 2-prefix backdoor to AT&T
//     that the default threshold hides.
//  3. Figure 6 — mapping only the routes tagged 2152:65297 shows the
//     community is mis-tagged (68% of it is KDDI, not Los Nettos).
//  4. §III-D.2 — traffic weighting: the same prefix counts can hide a
//     very different byte split.
//
// Run: go run ./examples/campus-loadbalance
package main

import (
	"fmt"
	"math/rand"
	"net/netip"

	"rex"
	"rex/internal/core/tamp"
	"rex/internal/sim"
	"rex/internal/traffic"
)

func main() {
	site := sim.Berkeley(sim.BerkeleyConfig{Misconfigured: true})
	baseline := site.BaselineRoutes()
	g := sim.TAMPGraph("berkeley", baseline)
	total := g.TotalPrefixes()

	fmt.Println("== 1. Load balancing unbalanced (Figure 2) ==")
	fmt.Print(rex.ASCII(g.Snapshot(rex.PruneOptions{})))
	r3 := tamp.RouterNode("128.32.1.3")
	w66 := g.Weight(r3, tamp.NexthopNode(sim.BerkeleyNexthop66))
	w70 := g.Weight(r3, tamp.NexthopNode(sim.BerkeleyNexthop70))
	fmt.Printf("\nrate limiter split: %.0f%% via .66 vs %.0f%% via .70 — intended 50/50!\n\n",
		100*float64(w66)/float64(total), 100*float64(w70)/float64(total))

	fmt.Println("== 2. Backdoor routes (Figure 5, hierarchical pruning) ==")
	hier := g.Snapshot(rex.PruneOptions{KeepDepth: 3})
	fmt.Print(rex.ASCII(hier))
	if e, ok := hier.Edge(tamp.NexthopNode(sim.BerkeleyNexthop157), tamp.ASNode(sim.ASATT)); ok {
		fmt.Printf("\nbackdoor: router 128.32.1.222 carries %d prefixes straight to AT&T\n\n", e.Weight)
	}

	fmt.Println("== 3. Community mis-tagging (Figure 6) ==")
	tagged := site.MistagRoutes()
	sub := sim.TAMPGraph("community 2152:65297", tagged)
	fmt.Print(rex.ASCII(sub.Snapshot(rex.PruneOptions{Threshold: -1})))
	ln := sub.Weight(tamp.ASNode(sim.ASCalREN), tamp.ASNode(sim.ASLosNettos))
	kd := sub.Weight(tamp.ASNode(sim.ASCalREN), tamp.ASNode(sim.ASKDDI))
	fmt.Printf("\nonly %.0f%% of tagged prefixes are from Los Nettos; %.0f%% are KDDI — a tagging error\n\n",
		100*float64(ln)/float64(ln+kd), 100*float64(kd)/float64(ln+kd))

	fmt.Println("== 4. Prefix balance vs traffic balance (§III-D.2) ==")
	// Zipf traffic over the unique prefixes: elephants and mice.
	seen := map[netip.Prefix]bool{}
	var all []netip.Prefix
	for _, r := range baseline {
		if !seen[r.Prefix] {
			seen[r.Prefix] = true
			all = append(all, r.Prefix)
		}
	}
	vol := traffic.GenerateZipf(all, 10_000_000_000, 1.8, rand.New(rand.NewSource(42)))
	b66 := traffic.EdgeVolume(g, r3, tamp.NexthopNode(sim.BerkeleyNexthop66), vol)
	b70 := traffic.EdgeVolume(g, r3, tamp.NexthopNode(sim.BerkeleyNexthop70), vol)
	fmt.Printf("prefix split .66/.70: %d / %d prefixes (%.1fx)\n", w66, w70, float64(w66)/float64(w70))
	fmt.Printf("byte   split .66/.70: %.1f / %.1f GB (%.1fx) — the elephants decide\n",
		float64(b66)/1e9, float64(b70)/1e9, float64(b66)/float64(b70))
	fmt.Printf("elephants: %d of %d prefixes carry 90%% of traffic\n",
		len(vol.Elephants(0.9)), len(all))
}
