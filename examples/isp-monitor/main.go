// ISP monitor: the full live pipeline in one process, the way the paper's
// system ran inside ISP-Anon.
//
// A collector (the REX role) listens for IBGP sessions on loopback. A
// simulated route-reflector fleet connects over real BGP/TCP sessions and
// replays a steady baseline, background churn, a customer-session reset
// spike, and the §IV-E continuous customer flapping. The anomaly pipeline
// then scans the augmented event stream and reports what it found.
//
// Run: go run ./examples/isp-monitor
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"rex"
	"rex/internal/bgp"
	"rex/internal/bgp/fsm"
	"rex/internal/event"
	"rex/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	is := sim.ISPAnon(sim.ISPAnonConfig{
		PoPs: 2, RRsPerPoP: 1, Tier1Peers: 3,
		CustomerStubs: 60, PrefixesPerStub: 5,
	})
	baseline := is.BaselineRoutes()

	// The incident mix: grass + a reset spike + continuous flapping.
	t0 := time.Now().Add(-2 * time.Hour)
	noise := sim.NoiseStream(baseline, 3000, 2*time.Hour, t0, 1)
	reset := sim.SessionResetScenario(is.Site, baseline, is.Tier1s[0], 20*time.Second, t0.Add(30*time.Minute))
	flap := sim.CustomerFlapScenario(is, 60, 2*time.Minute, t0)
	all := append(event.Stream{}, noise...)
	all = append(all, reset.Events...)
	all = append(all, flap.Events...)
	all.SortByTime()

	// The collector + pipeline (the rexd role), in-process.
	pipeline := rex.NewPipeline(rex.DetectorConfig{}, 2_000_000)
	coll, addr, err := rex.ListenAndCollect("127.0.0.1:0", rex.CollectorConfig{
		LocalAS: sim.ASISPAnon,
		LocalID: rex.MustAddr("10.255.0.1"),
	}, pipeline.Ingest)
	if err != nil {
		return err
	}
	defer coll.Close()

	// Replay the baseline and events over real BGP sessions, one per RR.
	sessions := map[netip.Addr]*fsm.Session{}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()
	sessionFor := func(router netip.Addr) (*fsm.Session, error) {
		if s, ok := sessions[router]; ok {
			return s, nil
		}
		s, err := fsm.Dial(addr.String(), fsm.Config{LocalAS: sim.ASISPAnon, LocalID: router})
		if err != nil {
			return nil, err
		}
		sessions[router] = s
		return s, nil
	}
	for _, r := range baseline {
		s, err := sessionFor(r.Attachment.RouterAddr)
		if err != nil {
			return err
		}
		if err := s.Send(&bgp.Update{Attrs: r.Attrs, NLRI: []netip.Prefix{r.Prefix}}); err != nil {
			return err
		}
	}
	fmt.Printf("replayed %d baseline routes over %d IBGP sessions\n", len(baseline), len(sessions))

	// Wait for the collector to absorb the baseline, then clear the
	// buffer: monitoring starts from steady state.
	waitFor(func() bool { return pipeline.Buffered() >= len(baseline) })
	pipeline.Reset()

	for i := range all {
		e := &all[i]
		s, err := sessionFor(e.Peer)
		if err != nil {
			return err
		}
		upd := &bgp.Update{}
		if e.Type == event.Announce {
			upd.Attrs, upd.NLRI = e.Attrs, []netip.Prefix{e.Prefix}
		} else {
			upd.Withdrawn = []netip.Prefix{e.Prefix}
		}
		if err := s.Send(upd); err != nil {
			return err
		}
	}
	waitFor(func() bool { return pipeline.Buffered() >= len(all) })
	fmt.Printf("collector absorbed %d events (%d routes in RIBs)\n\n", pipeline.Buffered(), coll.NumRoutes())

	// Live replay compresses time, so scan the *scenario* stream for the
	// time-aware analysis and the pipeline buffer for the live view.
	detector := rex.NewDetector(rex.DetectorConfig{})
	fmt.Println("anomaly scan:")
	for _, a := range detector.Scan(all) {
		fmt.Printf("  ALERT %s\n", a.Summary())
		for i, c := range a.Components {
			if i >= 2 {
				break
			}
			fmt.Printf("    component: %v — %d events on %d prefixes\n", c.Stem, c.NumEvents(), len(c.Prefixes))
		}
	}
	return nil
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && !cond() {
		time.Sleep(10 * time.Millisecond)
	}
}
