// Live network: a real multi-router BGP network feeding the detection
// pipeline, end to end over TCP.
//
//	origin (AS100) --eBGP-- transit (AS200) --iBGP-- collector "REX" (AS200)
//
// The origin router flaps one of its prefixes continuously (the §IV-E
// pattern). Every hop is a real BGP session: the transit router runs the
// full decision process and re-advertises best-route changes; the
// collector augments withdrawals from its Adj-RIB-In; Stemming finds the
// flapping prefix.
//
// Run: go run ./examples/live-network
package main

import (
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"rex"
	"rex/internal/router"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The collector (REX role) with a live pipeline behind it.
	pipeline := rex.NewPipeline(rex.DetectorConfig{ChurnMinEvents: 10}, 100_000)
	rec := rex.NewRecorder()
	coll, collAddr, err := rex.ListenAndCollect("127.0.0.1:0", rex.CollectorConfig{
		LocalAS: 200,
		LocalID: rex.MustAddr("2.0.0.99"),
	}, func(e rex.Event) {
		rec.Handle(e)
		pipeline.Ingest(e)
	})
	if err != nil {
		return err
	}
	defer coll.Close()

	// The transit router (AS200).
	transit := router.New(router.Config{AS: 200, RouterID: rex.MustAddr("2.0.0.1")})
	transitLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = transit.Serve(transitLn) }()
	defer transit.Close()

	// The origin router (AS100) with a handful of prefixes.
	origin := router.New(router.Config{AS: 100, RouterID: rex.MustAddr("1.0.0.1")})
	defer origin.Close()
	stable := []netip.Prefix{
		rex.MustPrefix("10.1.0.0/16"),
		rex.MustPrefix("10.2.0.0/16"),
		rex.MustPrefix("10.3.0.0/16"),
	}
	for _, p := range stable {
		origin.Originate(p)
	}
	flappy := rex.MustPrefix("9.9.0.0/16")
	origin.Originate(flappy)

	// Wire the network: origin --eBGP--> transit --iBGP--> collector.
	if err := origin.Connect(transitLn.Addr().String()); err != nil {
		return err
	}
	if err := transit.Connect(collAddr.String()); err != nil {
		return err
	}
	waitFor(func() bool { return rec.Len() >= 4 })
	fmt.Printf("network up: collector heard %d announcements via AS200\n", rec.Len())

	// Flap the customer prefix, §IV-E style.
	const flaps = 15
	for i := 0; i < flaps; i++ {
		origin.WithdrawOriginated(flappy)
		time.Sleep(20 * time.Millisecond)
		origin.Originate(flappy)
		time.Sleep(20 * time.Millisecond)
	}
	waitFor(func() bool { return rec.Len() >= 4+2*flaps })
	fmt.Printf("after %d flaps: %d events captured (withdrawals augmented by the Adj-RIB-In)\n",
		flaps, rec.Len())

	// Detection: the flapping prefix dominates the correlation.
	alerts := pipeline.Scan()
	for _, a := range alerts {
		fmt.Println("ALERT", a.Summary())
	}
	if len(alerts) == 0 {
		return fmt.Errorf("no alerts")
	}
	top := alerts[0].Components[0]
	fmt.Printf("strongest component: %v — prefixes %v\n", top.Stem, top.Prefixes)
	return nil
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && !cond() {
		time.Sleep(10 * time.Millisecond)
	}
}
