// MED oscillation: the paper's §IV-F incident and Figure 3 animation.
//
// Part 1 shows the root cause at the decision-process level: per-neighbor-
// AS MED comparison has no total ordering, so whether a route wins can
// depend on what else happens to be visible — the RFC 3345 ingredient.
//
// Part 2 generates the oscillation event stream (core2-a/b flapping their
// AS2 route far faster than a frame; core1-a/b alternating paths),
// detects it with Stemming even in a short window, and renders animation
// frames in the style of Figure 3 — yellow "too fast to animate" edges,
// gray max shadows, an animation clock, and the selected-edge prefix
// plot.
//
// Run: go run ./examples/med-oscillation
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"rex"
	"rex/internal/bgp"
	"rex/internal/core/tamp"
	"rex/internal/rib"
	"rex/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	decisionDemo()
	return animationDemo()
}

// decisionDemo: removing or adding an unrelated route flips the winner.
func decisionDemo() {
	fmt.Println("== Why MED oscillates: no total ordering ==")
	mk := func(peer string, neighborAS uint32, med int64) *rib.Route {
		r := &rib.Route{
			Prefix:       rex.MustPrefix("4.5.0.0/16"),
			Peer:         rex.MustAddr(peer),
			PeerRouterID: rex.MustAddr(peer),
			Attrs: &bgp.PathAttrs{
				Origin:  bgp.OriginIGP,
				ASPath:  bgp.Sequence(neighborAS, 65020),
				Nexthop: rex.MustAddr("10.3.4.5"),
			},
		}
		if med >= 0 {
			r.Attrs.HasMED, r.Attrs.MED = true, uint32(med)
		}
		return r
	}
	a := mk("1.1.1.1", 4002, 50) // AS2 route, MED 50
	b := mk("2.2.2.2", 4001, -1) // AS1 route, no MED
	c := mk("3.3.3.3", 4002, 10) // AS2 route, MED 10 (hidden or not)

	d := rib.Decision{}
	best, step := d.Best([]*rib.Route{a, b})
	fmt.Printf("without c: best via %v (decided by %v)\n", best.Peer, step)
	best, step = d.Best([]*rib.Route{a, b, c})
	fmt.Printf("with    c: best via %v (decided by %v) — c's MED killed a, b wins\n\n", best.Peer, step)
}

func animationDemo() error {
	is := sim.ISPAnon(sim.ISPAnonConfig{})
	// 200ms of oscillation: AS2 route flapping every 100µs at core2-a/b,
	// core1-a/b alternating every 10ms (scaled from the paper's 10µs/10ms
	// to keep the example quick).
	sc := sim.MEDOscillationScenario(is, 200*time.Millisecond, 100*time.Microsecond, 10*time.Millisecond, time.Now())
	fmt.Printf("== §IV-F oscillation: %d events on %v in 200ms ==\n", len(sc.Events), sim.MEDPrefix)

	// Stemming finds it instantly, even at this short timescale.
	comps := rex.Stemming(sc.Events, rex.StemmingConfig{MaxComponents: 1})
	if len(comps) > 0 {
		c := comps[0]
		fmt.Printf("stemming: strongest component %v — %d events, all on %v\n",
			c.Stem, c.NumEvents(), c.Prefixes[0])
	}

	// Animate and render three frames as SVG.
	var base []rex.RouteEntry
	for _, r := range sc.Baseline {
		base = append(base, r.TAMPEntry())
	}
	anim := rex.Animate(is.Name, base, sc.Events, rex.AnimationConfig{})
	// Events carry the RR's peering address; the animation names routers
	// by it.
	core2a := is.RRs[1][0]
	fast := tamp.EdgeRef{
		From: tamp.RouterNode(core2a.Addr.String()),
		To:   tamp.NexthopNode(rex.MustAddr("10.3.4.5")),
	}
	yellow := 0
	for _, f := range anim.Frames {
		for _, ch := range f.Changes {
			if ch.Edge == fast && ch.Color == tamp.ColorYellow {
				yellow++
				break
			}
		}
	}
	fmt.Printf("animation: %d frames; core2-a edge is YELLOW (too fast to animate) in %d of them\n",
		anim.NumFrames, yellow)

	dir, err := os.MkdirTemp("", "med-frames-")
	if err != nil {
		return err
	}
	for _, idx := range []int{0, anim.NumFrames / 2, anim.NumFrames - 1} {
		svg := rex.AnimationFrameSVG(anim, idx, fast)
		path := filepath.Join(dir, fmt.Sprintf("frame-%03d.svg", idx))
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(svg))
	}
	fmt.Println("open the SVGs to see the Figure-3-style snapshots")
	return nil
}
