# Pre-merge gate: everything here must pass before a change lands.
# `make check` is what CI would run — vet, build, the full test suite
# under the race detector, and a seed pass of the fuzz targets.

GO ?= go

.PHONY: check vet build test race fuzz-seed fuzz

check: vet build race fuzz-seed

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the fuzz corpora as plain tests (fast; catches regressions on
# known-interesting inputs without an open-ended fuzz run).
fuzz-seed:
	$(GO) test ./internal/bgp ./internal/mrt ./internal/event ./internal/journal ./internal/relay ./internal/core/stemming ./internal/serve -run Fuzz -count=1

# The hottest concurrent paths, twice, under the race detector: session
# handling, the dial loop, the sharded streaming window, the parallel
# analysis engine (pipeline worker pool + TAMP shard merge), and the
# journal's crash harness (SIGKILL + torn-tail recovery).
.PHONY: race-hot
race-hot:
	$(GO) test -race -count=2 ./internal/collector ./internal/bgp/fsm ./internal/core/pipeline ./internal/core/stemming ./internal/core/tamp ./internal/journal ./internal/relay ./internal/serve

# The fleet soak: collector subprocesses SIGKILLed round-robin while
# relaying to one analysis node, final output required byte-identical
# to a single-process replay (see EXPERIMENTS.md "Fleet fan-in").
# TestFleetNodeSIGKILL additionally runs the analysis node as a durable
# subprocess and SIGKILLs it too, exercising receiver checkpoint
# recovery under the same differential.
.PHONY: soak
soak:
	$(GO) test -race -count=1 -run 'TestFleet|TestRelayFeedFromLiveCollector' ./cmd/rexfleet ./cmd/rexd

# The serving-tier soak: a live rexd swarmed by rexload pollers and SSE
# subscribers, SIGKILLed mid-swarm twice (once with the journal intact,
# once with it wiped so only the durable last snapshot remains), and
# drained with SIGTERM at the end. Proves single-flight rendering under
# load, zero 5xx across the chaos, explicit staleness while degraded,
# and bye-before-close SSE drain (see EXPERIMENTS.md "Serving tier").
.PHONY: serve-soak
serve-soak:
	$(GO) test -race -count=1 -run 'TestServeSoak' ./cmd/rexload

# Open-ended fuzzing of the wire parser; override FUZZTIME for longer runs.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/bgp -fuzz FuzzReadMessage -fuzztime $(FUZZTIME)

# Benchmark regression harness: runs the pipeline window benchmarks
# (sequential and parallel) and distills ns/op, events/sec and allocs/op
# into BENCH_pr6.json. Format documented in EXPERIMENTS.md.
BENCHTIME ?= 1x
.PHONY: bench
bench:
	$(GO) run ./cmd/benchjson -benchtime $(BENCHTIME) -out BENCH_pr6.json

# Benchmark regression smoke: one short fresh run of the parallel-window
# benchmark diffed against the committed baseline. Fails on an allocs/op
# increase beyond 25% (alloc counts are deterministic) or an events/sec
# collapse below half the baseline (loose on purpose — shared CI runners
# are noisy). BENCH_BASE overrides the baseline file.
BENCH_BASE ?= BENCH_pr6.json
.PHONY: bench-check
bench-check:
	$(GO) run ./cmd/benchjson -benchtime 1x -bench '^BenchmarkParallelWindow$$' -compare $(BENCH_BASE)
