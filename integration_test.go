package rex_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildTools compiles the command-line tools once per test binary run.
var buildTools = sync.OnceValues(func() (map[string]string, error) {
	dir, err := os.MkdirTemp("", "rex-tools-")
	if err != nil {
		return nil, err
	}
	tools := map[string]string{}
	for _, name := range []string{"tamp", "stemming", "bgpsim", "rexd", "experiments", "animate"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("build %s: %v\n%s", name, err, out)
		}
		tools[name] = bin
	}
	return tools, nil
})

func tool(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("integration test: skipped in -short mode")
	}
	tools, err := buildTools()
	if err != nil {
		t.Fatal(err)
	}
	return tools[name]
}

func runTool(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(tool(t, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

// TestCLIGenerateAnalyzeRender drives the offline pipeline: bgpsim writes
// an incident's RIB + events; tamp renders the picture; stemming analyzes
// the stream.
func TestCLIGenerateAnalyzeRender(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "leak.events")
	table := filepath.Join(dir, "baseline.mrt")

	out := runTool(t, "bgpsim", "-scenario", "leak", "-events", events, "-rib", table)
	if !strings.Contains(out, "scenario peer-leak") {
		t.Fatalf("bgpsim output: %s", out)
	}

	// Render the baseline RIB.
	pic := runTool(t, "tamp", "-rib", table, "-site", "berkeley")
	for _, want := range []string{"berkeley", "AS11423", "AS209", "128.32.1.3"} {
		if !strings.Contains(pic, want) {
			t.Errorf("tamp ascii missing %q:\n%s", want, pic)
		}
	}
	// DOT and SVG outputs, and hierarchical pruning exposing the
	// backdoor router.
	dot := runTool(t, "tamp", "-rib", table, "-format", "dot")
	if !strings.Contains(dot, "digraph") {
		t.Error("no digraph in DOT output")
	}
	hier := runTool(t, "tamp", "-rib", table, "-keep-depth", "3")
	if !strings.Contains(hier, "128.32.1.222") {
		t.Error("hierarchical pruning did not keep the backdoor router")
	}
	// Community subset (Figure 6).
	subset := runTool(t, "tamp", "-rib", table, "-community", "2152:65297", "-threshold", "-1")
	if !strings.Contains(subset, "AS2516") || !strings.Contains(subset, "AS226") {
		t.Errorf("community subset wrong:\n%s", subset)
	}

	// Analyze the incident stream.
	analysis := runTool(t, "stemming", "-in", events, "-rate", "-max", "2")
	for _, want := range []string{"component(s):", "stem", "event rate"} {
		if !strings.Contains(analysis, want) {
			t.Errorf("stemming output missing %q:\n%s", want, analysis)
		}
	}

	// Render animation frames of the incident.
	frames := filepath.Join(dir, "frames")
	out = runTool(t, "animate", "-rib", table, "-in", events,
		"-o", frames, "-every", "250", "-select", "AS11423->AS209", "-site", "berkeley")
	if !strings.Contains(out, "frames in") {
		t.Fatalf("animate output: %s", out)
	}
	entries, err := os.ReadDir(frames)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no frames written: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(frames, entries[0].Name()))
	if err != nil || !strings.Contains(string(data), "prefixes over time") {
		t.Error("frame missing the selected-edge plot")
	}
}

// TestCLISVGOutputFile checks -o writes a file.
func TestCLISVGOutputFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "pic.svg")
	runTool(t, "tamp", "-scenario", "berkeley-misconfig", "-format", "svg", "-o", out)
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("not an SVG")
	}
}

// TestCLILiveReplay runs rexd and feeds it a scenario over real BGP
// sessions via bgpsim, then checks the captured stream analyzes.
func TestCLILiveReplay(t *testing.T) {
	dir := t.TempDir()
	eventsOut := filepath.Join(dir, "live.events")

	// Pick a free port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	rexd := exec.Command(tool(t, "rexd"),
		"-listen", addr, "-out", eventsOut, "-scan-every", "0", "-run-for", "6s")
	rexdOut, err := os.Create(filepath.Join(dir, "rexd.log"))
	if err != nil {
		t.Fatal(err)
	}
	rexd.Stdout, rexd.Stderr = rexdOut, rexdOut
	if err := rexd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = rexd.Process.Kill()
		_, _ = rexd.Process.Wait()
	}()

	// Wait for the listener.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rexd never listened")
		}
		time.Sleep(50 * time.Millisecond)
	}

	runTool(t, "bgpsim", "-scenario", "med", "-duration", "100ms", "-replay", addr)

	// Wait for rexd's -run-for exit so the event file is flushed and
	// complete.
	if err := rexd.Wait(); err != nil {
		t.Fatalf("rexd: %v", err)
	}
	st, err := os.Stat(eventsOut)
	if err != nil || st.Size() == 0 {
		t.Fatalf("no events captured: %v", err)
	}

	analysis := runTool(t, "stemming", "-in", eventsOut, "-max", "1")
	if !strings.Contains(analysis, "4.5.0.0/16") {
		t.Errorf("live capture analysis missing the MED prefix:\n%s", analysis)
	}
}

// TestCLIExperimentsQuickSubset runs one figure through the experiments
// harness.
func TestCLIExperimentsQuickSubset(t *testing.T) {
	out := runTool(t, "experiments", "-quick", "-only", "fig1,fig4,fig6")
	for _, want := range []string{"Figure 1", "**4**", "AS11423—AS209", "KDDI **68%**"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiments output missing %q", want)
		}
	}
}
