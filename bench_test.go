// Benchmarks regenerating the paper's Table I and timing each figure's
// pipeline. Absolute numbers will not match the paper's 3.06 GHz
// Pentium 4; the shape must: TAMP pictures ~linear in routes, animation
// and Stemming ~linear in events, ISP runs slower than Berkeley at equal
// event counts (larger RIB/topology state). cmd/experiments prints the
// tables in the paper's layout; EXPERIMENTS.md records paper-vs-measured.
package rex_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"rex/internal/core/pipeline"
	"rex/internal/core/stemming"
	"rex/internal/core/tamp"
	"rex/internal/event"
	"rex/internal/journal"
	"rex/internal/sim"
	"rex/internal/viz"
)

var benchStart = time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)

// ---- dataset caches (built once per size, shared across benchmarks) ----

type berkeleyData struct {
	site    *sim.BerkeleySite
	routes  []sim.SiteRoute
	entries []tamp.RouteEntry
}

type ispData struct {
	site    *sim.ISPAnonSite
	routes  []sim.SiteRoute
	entries []tamp.RouteEntry
}

var (
	berkeleyCache = map[int]*berkeleyData{}
	ispCache      = map[int]*ispData{}
	eventCache    = map[string]event.Stream{}
)

func berkeleyAt(b *testing.B, routes int) *berkeleyData {
	b.Helper()
	if d, ok := berkeleyCache[routes]; ok {
		return d
	}
	site := sim.BerkeleyScale(routes)
	rs := site.BaselineRoutes()
	d := &berkeleyData{site: site, routes: rs, entries: toEntries(rs)}
	berkeleyCache[routes] = d
	return d
}

func ispAt(b *testing.B, routes int) *ispData {
	b.Helper()
	if d, ok := ispCache[routes]; ok {
		return d
	}
	site := sim.ISPAnonScale(routes)
	rs := site.BaselineRoutes()
	d := &ispData{site: site, routes: rs, entries: toEntries(rs)}
	ispCache[routes] = d
	return d
}

func toEntries(rs []sim.SiteRoute) []tamp.RouteEntry {
	out := make([]tamp.RouteEntry, len(rs))
	for i, r := range rs {
		out[i] = r.TAMPEntry()
	}
	return out
}

func benchEvents(b *testing.B, key string, site *sim.Site, baseline []sim.SiteRoute, n int, over time.Duration) event.Stream {
	b.Helper()
	if s, ok := eventCache[key]; ok {
		return s
	}
	s := sim.BenchEvents(site, baseline, n, over, benchStart, 42)
	if len(s) != n {
		b.Fatalf("dataset %s: %d events, want %d", key, len(s), n)
	}
	eventCache[key] = s
	return s
}

// ---- Table I(a): Berkeley ----

// BenchmarkTableIA_TAMPPicture times computing and pruning a TAMP picture
// from N routes (paper: 0.5s/1.6s/1.8s for 23k/115k/230k).
func BenchmarkTableIA_TAMPPicture(b *testing.B) {
	for _, routes := range []int{23_000, 115_000, 230_000} {
		d := berkeleyAt(b, routes)
		b.Run(fmt.Sprintf("routes=%dk", routes/1000), func(b *testing.B) {
			b.ReportMetric(float64(len(d.routes)), "routes")
			for i := 0; i < b.N; i++ {
				g := tamp.New("berkeley")
				for _, e := range d.entries {
					g.AddRoute(e)
				}
				pic := g.Snapshot(tamp.PruneOptions{})
				if pic.Total == 0 {
					b.Fatal("empty picture")
				}
			}
		})
	}
}

// BenchmarkTableIA_TAMPAnimation times tracking N events into animation
// frames over the Berkeley table (paper: 0.5s/1.1s/9s/78s for
// 1k/10k/100k/1000k). Baseline ingestion is excluded, matching the
// paper's "we do not include time to rebuild the data structures".
func BenchmarkTableIA_TAMPAnimation(b *testing.B) {
	d := berkeleyAt(b, 23_000)
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		over := time.Duration(n/2) * time.Second // paper-like multi-hour ranges
		events := benchEvents(b, fmt.Sprintf("ba%d", n), d.site.Site, d.routes, n, over)
		b.Run(fmt.Sprintf("events=%dk", n/1000), func(b *testing.B) {
			b.ReportMetric(float64(n), "events")
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				an := tamp.NewAnimator("berkeley", d.entries)
				b.StartTimer()
				anim := an.Run(events, tamp.AnimationConfig{})
				if anim.NumFrames == 0 {
					b.Fatal("no frames")
				}
			}
		})
	}
}

// BenchmarkTableIA_Stemming times the full decomposition of real-size
// event spikes (paper: 8.6s/9.5s/17.3s for 12k/57k/330k).
func BenchmarkTableIA_Stemming(b *testing.B) {
	d := berkeleyAt(b, 23_000)
	for _, n := range []int{12_000, 57_000, 330_000} {
		events := benchEvents(b, fmt.Sprintf("bs%d", n), d.site.Site, d.routes, n, 15*time.Minute)
		b.Run(fmt.Sprintf("events=%dk", n/1000), func(b *testing.B) {
			b.ReportMetric(float64(n), "events")
			for i := 0; i < b.N; i++ {
				comps := stemming.Analyze(events, stemming.Config{})
				if len(comps) == 0 {
					b.Fatal("no components")
				}
			}
		})
	}
}

// ---- Table I(b): ISP-Anon ----

// BenchmarkTableIB_TAMPPicture (paper: 1.5s/3.8s/7s for 150k/750k/1500k).
func BenchmarkTableIB_TAMPPicture(b *testing.B) {
	for _, routes := range []int{150_000, 750_000, 1_500_000} {
		d := ispAt(b, routes)
		b.Run(fmt.Sprintf("routes=%dk", routes/1000), func(b *testing.B) {
			b.ReportMetric(float64(len(d.routes)), "routes")
			for i := 0; i < b.N; i++ {
				g := tamp.New("isp-anon")
				for _, e := range d.entries {
					g.AddRoute(e)
				}
				pic := g.Snapshot(tamp.PruneOptions{})
				if pic.Total == 0 {
					b.Fatal("empty picture")
				}
			}
		})
	}
}

// BenchmarkTableIB_TAMPAnimation (paper: 1.0s/1.6s/9.4s/88.5s).
func BenchmarkTableIB_TAMPAnimation(b *testing.B) {
	d := ispAt(b, 150_000)
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		over := time.Duration(n/10) * time.Second // chattier: shorter ranges
		events := benchEvents(b, fmt.Sprintf("ia%d", n), d.site.Site, d.routes, n, over)
		b.Run(fmt.Sprintf("events=%dk", n/1000), func(b *testing.B) {
			b.ReportMetric(float64(n), "events")
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				an := tamp.NewAnimator("isp-anon", d.entries)
				b.StartTimer()
				anim := an.Run(events, tamp.AnimationConfig{})
				if anim.NumFrames == 0 {
					b.Fatal("no frames")
				}
			}
		})
	}
}

// BenchmarkTableIB_Stemming (paper: 32.8s/34.1s/35.2s for
// 214k/346k/791k).
func BenchmarkTableIB_Stemming(b *testing.B) {
	d := ispAt(b, 150_000)
	for _, n := range []int{214_000, 346_000, 791_000} {
		events := benchEvents(b, fmt.Sprintf("is%d", n), d.site.Site, d.routes, n, time.Hour)
		b.Run(fmt.Sprintf("events=%dk", n/1000), func(b *testing.B) {
			b.ReportMetric(float64(n), "events")
			for i := 0; i < b.N; i++ {
				comps := stemming.Analyze(events, stemming.Config{})
				if len(comps) == 0 {
					b.Fatal("no components")
				}
			}
		})
	}
}

// ---- Figures ----

// BenchmarkFigure2BerkeleyPicture: the load-balance picture at the
// paper's actual Berkeley size (~23k routes).
func BenchmarkFigure2BerkeleyPicture(b *testing.B) {
	d := berkeleyAt(b, 23_000)
	for i := 0; i < b.N; i++ {
		g := tamp.New("berkeley")
		for _, e := range d.entries {
			g.AddRoute(e)
		}
		pic := g.Snapshot(tamp.PruneOptions{})
		_ = viz.ASCII(pic)
	}
}

// BenchmarkFigure3MEDAnimation: generating and animating one second of
// the §IV-F oscillation.
func BenchmarkFigure3MEDAnimation(b *testing.B) {
	is := sim.ISPAnon(sim.ISPAnonConfig{})
	sc := sim.MEDOscillationScenario(is, time.Second, 0, 0, benchStart)
	entries := toEntries(sc.Baseline)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		an := tamp.NewAnimator(is.Name, entries)
		b.StartTimer()
		anim := an.Run(sc.Events, tamp.AnimationConfig{})
		if anim.NumFrames == 0 {
			b.Fatal("no frames")
		}
	}
}

// BenchmarkFigure4Stem: stemming the 10-withdrawal spike (detection
// latency floor).
func BenchmarkFigure4Stem(b *testing.B) {
	d := berkeleyAt(b, 23_000)
	spike := sim.SessionResetScenario(d.site.Site, d.routes[:100], sim.ASCalREN, time.Minute, benchStart)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := stemming.Top(spike.Events, stemming.Config{}); !ok {
			b.Fatal("no stem")
		}
	}
}

// BenchmarkFigure5HierarchicalPruning vs flat: the ablation for keeping
// the operator's own domain visible.
func BenchmarkFigure5HierarchicalPruning(b *testing.B) {
	d := berkeleyAt(b, 23_000)
	g := tamp.New("berkeley")
	for _, e := range d.entries {
		g.AddRoute(e)
	}
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Snapshot(tamp.PruneOptions{})
		}
	})
	b.Run("hierarchical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Snapshot(tamp.PruneOptions{KeepDepth: 3})
		}
	})
}

// BenchmarkFigure6CommunitySubset: building the picture of one
// community's routes out of the full table.
func BenchmarkFigure6CommunitySubset(b *testing.B) {
	d := berkeleyAt(b, 23_000)
	for i := 0; i < b.N; i++ {
		g := tamp.New("berkeley-2152-65297")
		for _, r := range d.routes {
			if r.Attrs.HasCommunity(sim.CommLosNettos) {
				g.AddRoute(r.TAMPEntry())
			}
		}
		g.Snapshot(tamp.PruneOptions{Threshold: -1})
	}
}

// BenchmarkFigure7LeakAnimation: the §IV-D leak incident end to end
// (generation excluded, animation timed).
func BenchmarkFigure7LeakAnimation(b *testing.B) {
	site := sim.Berkeley(sim.BerkeleyConfig{Misconfigured: true})
	sc := sim.PeerLeakScenario(site, 2, benchStart)
	entries := toEntries(sc.Baseline)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		an := tamp.NewAnimator("berkeley", entries)
		b.StartTimer()
		an.Run(sc.Events, tamp.AnimationConfig{})
	}
}

// BenchmarkFigure8EventRate: bucketing a week-scale stream into the event
// rate series and finding spikes.
func BenchmarkFigure8EventRate(b *testing.B) {
	d := ispAt(b, 150_000)
	events := benchEvents(b, "f8", d.site.Site, d.routes, 500_000, 14*24*time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := event.Rate(events, time.Minute)
		rs.Spikes(8)
	}
}

// BenchmarkFigure9FlapDetection: long-window stemming over grass
// containing the continuous customer flap.
func BenchmarkFigure9FlapDetection(b *testing.B) {
	is := sim.ISPAnon(sim.ISPAnonConfig{})
	baseline := is.BaselineRoutes()
	flap := sim.CustomerFlapScenario(is, 50, time.Minute, benchStart)
	noise := sim.NoiseStream(baseline, 5_000, 50*time.Minute, benchStart, 9)
	all := append(append(event.Stream{}, noise...), flap.Events...)
	all.SortByTime()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := stemming.Top(all, stemming.Config{}); !ok {
			b.Fatal("flap not found")
		}
	}
}

// ---- Streaming pipeline ----

// BenchmarkPipelineWindow compares continuous windowed analysis done the
// batch way (re-running Analyze over the window slice at every snapshot
// point) against the streaming Window (incremental add/evict counting,
// snapshot from the live tables), single-sharded and with one count
// shard per core. Same stream, same window, same snapshot positions —
// the decompositions are identical (see stemming's equivalence tests);
// only the work per snapshot differs.
func BenchmarkPipelineWindow(b *testing.B) {
	d := ispAt(b, 150_000)
	const n = 50_000
	events := benchEvents(b, "pw", d.site.Site, d.routes, n, time.Hour)
	const (
		window    = 30 * time.Minute
		snapEvery = 2 * time.Minute
	)

	b.Run("batch", func(b *testing.B) {
		b.ReportMetric(float64(n), "events")
		for i := 0; i < b.N; i++ {
			comps, start := 0, 0
			next := events[0].Time.Add(snapEvery)
			for idx := range events {
				t := events[idx].Time
				for !t.Before(next) {
					for events[start].Time.Before(t.Add(-window)) {
						start++
					}
					comps += len(stemming.Analyze(events[start:idx+1], stemming.Config{}))
					next = next.Add(snapEvery)
				}
			}
			if comps == 0 {
				b.Fatal("no components")
			}
		}
	})
	shardCounts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		shardCounts = append(shardCounts, p)
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("streamed/shards=%d", shards), func(b *testing.B) {
			b.ReportMetric(float64(n), "events")
			for i := 0; i < b.N; i++ {
				w := stemming.NewWindow(stemming.Config{}, shards)
				comps := 0
				next := events[0].Time.Add(snapEvery)
				for idx := range events {
					e := events[idx]
					w.Add(e)
					w.EvictBefore(e.Time.Add(-window))
					for !e.Time.Before(next) {
						comps += len(w.Snapshot())
						next = next.Add(snapEvery)
					}
				}
				if comps == 0 {
					b.Fatal("no components")
				}
			}
		})
	}
}

// BenchmarkParallelWindow runs the full streaming pipeline — sharded
// window counting plus the sharded TAMP RIB-shadow — over the
// Berkeley-scale churn stream at increasing worker counts. The output is
// byte-identical at every worker count (see the pipeline's differential
// equivalence suite); only wall-clock changes. `make bench` distills
// these runs into BENCH_pr6.json (format in EXPERIMENTS.md).
func BenchmarkParallelWindow(b *testing.B) {
	d := berkeleyAt(b, 23_000)
	const n = 100_000
	events := benchEvents(b, "par", d.site.Site, d.routes, n, time.Hour)
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportMetric(float64(n), "events")
			for i := 0; i < b.N; i++ {
				snaps := pipeline.Replay(events, pipeline.Config{
					Window:        30 * time.Minute,
					SnapshotEvery: 2 * time.Minute,
					SpikeK:        -1,
					Site:          "berkeley",
					Workers:       workers,
				})
				if len(snaps) == 0 {
					b.Fatal("no snapshots")
				}
			}
		})
	}
}

// ---- Time travel (DESIGN.md §15) ----

// BenchmarkReplayAt measures a cold /api/at answer end to end: scan the
// journal up to the instant, run the one-shot replay pipeline, render
// the picture. The instant is the newest event, so every iteration pays
// the worst case — a full-journal scan and replay; the serving tier's
// instant cache amortizes this to zero for repeat queries. `make bench`
// distills this into BENCH_pr6.json as the replay-latency entry.
func BenchmarkReplayAt(b *testing.B) {
	d := berkeleyAt(b, 23_000)
	const n = 20_000
	events := benchEvents(b, "at", d.site.Site, d.routes, n, time.Hour)
	dir := b.TempDir()
	w, err := journal.Open(dir, journal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := range events {
		if _, err := w.Append(&events[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.Config{
		Window:  30 * time.Minute,
		SpikeK:  -1,
		Site:    "berkeley",
		Workers: runtime.GOMAXPROCS(0),
	}
	at := events[len(events)-1].Time
	b.ReportMetric(float64(n), "events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := pipeline.ReplayState(cfg, nil, func(ingest func(e *event.Event)) error {
			_, err := journal.Scan(dir, 0, func(seq uint64, e *event.Event) error {
				if e.Time.After(at) {
					return journal.ErrStop
				}
				ingest(e)
				return nil
			})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(viz.SVG(snap.Picture)) == 0 {
			b.Fatal("empty render")
		}
	}
}

// ---- Ablations (DESIGN.md §4) ----

// BenchmarkAblationScore compares the score functions on the same stream.
func BenchmarkAblationScore(b *testing.B) {
	d := berkeleyAt(b, 23_000)
	events := benchEvents(b, "abl", d.site.Site, d.routes, 57_000, 15*time.Minute)
	for name, fn := range map[string]stemming.ScoreFunc{
		"count-only":  stemming.ScoreCountOnly,
		"count-edges": stemming.ScoreCountEdges,
		"count-len":   stemming.ScoreCountLen,
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stemming.Analyze(events, stemming.Config{Score: fn, MaxComponents: 4})
			}
		})
	}
}

// BenchmarkAblationSubseqCap: capping sub-sequence length trades
// localization depth for speed.
func BenchmarkAblationSubseqCap(b *testing.B) {
	d := berkeleyAt(b, 23_000)
	events := benchEvents(b, "abl", d.site.Site, d.routes, 57_000, 15*time.Minute)
	for _, cap := range []int{0, 3, 5} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stemming.Analyze(events, stemming.Config{MaxSubseqLen: cap, MaxComponents: 4})
			}
		})
	}
}

// BenchmarkAblationFrameConsolidation: the fixed 750-frame consolidation
// versus rendering at finer frame granularity.
func BenchmarkAblationFrameConsolidation(b *testing.B) {
	d := berkeleyAt(b, 23_000)
	events := benchEvents(b, "ba100000", d.site.Site, d.routes, 100_000, 14*time.Hour)
	for _, cfg := range []struct {
		name string
		c    tamp.AnimationConfig
	}{
		{"750-frames", tamp.AnimationConfig{}},
		{"7500-frames", tamp.AnimationConfig{PlayDuration: 300 * time.Second, FPS: 25}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				an := tamp.NewAnimator("berkeley", d.entries)
				b.StartTimer()
				an.Run(events, cfg.c)
			}
		})
	}
}
