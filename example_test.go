package rex_test

import (
	"fmt"
	"time"

	"rex"
	"rex/internal/bgp"
)

// ExampleNewTAMP reproduces the paper's Figure 1: two routers' trees
// merge into one graph whose shared edge carries the prefix set union.
func ExampleNewTAMP() {
	g := rex.NewTAMP("site")
	nexthopA := rex.MustAddr("10.0.0.65")
	for _, p := range []string{"1.2.1.0/24", "1.2.2.0/24", "1.2.3.0/24"} {
		g.AddRoute(rex.RouteEntry{Router: "X", Nexthop: nexthopA, ASPath: []uint32{1}, Prefix: rex.MustPrefix(p)})
	}
	for _, p := range []string{"1.2.2.0/24", "1.2.3.0/24", "1.2.4.0/24"} {
		g.AddRoute(rex.RouteEntry{Router: "Y", Nexthop: nexthopA, ASPath: []uint32{1}, Prefix: rex.MustPrefix(p)})
	}
	pic := g.Snapshot(rex.PruneOptions{Threshold: -1})
	fmt.Println("total prefixes:", pic.Total)
	fmt.Print(rex.ASCII(pic))
	// Output:
	// total prefixes: 4
	// site (4 prefixes)
	// ├── X — 3 (75%)
	// │   └── 10.0.0.65 — 3 (75%)
	// │       └── AS1 — 4 (100%)
	// └── Y — 3 (75%)
	//     └── 10.0.0.65 — 3 (75%) …
}

// ExampleStemming finds the problem location of a withdrawal spike.
func ExampleStemming() {
	t0 := time.Date(2003, 8, 1, 10, 0, 0, 0, time.UTC)
	var spike rex.Stream
	for i := 0; i < 8; i++ {
		spike = append(spike, rex.Event{
			Time: t0.Add(time.Duration(i) * time.Second),
			Type: rex.Withdraw,
			Peer: rex.MustAddr("128.32.1.3"),
			Attrs: &bgp.PathAttrs{
				ASPath:  bgp.Sequence(11423, 209, uint32(7000+i)),
				Nexthop: rex.MustAddr("128.32.0.66"),
			},
			Prefix: rex.MustPrefix(fmt.Sprintf("12.%d.41.0/24", i+1)),
		})
	}
	components := rex.Stemming(spike, rex.StemmingConfig{})
	fmt.Println("problem location:", components[0].Stem)
	// Output:
	// problem location: AS11423—AS209
}

// ExampleAnimate plays an incident back as a fixed-duration animation.
func ExampleAnimate() {
	t0 := time.Date(2002, 7, 1, 0, 0, 0, 0, time.UTC)
	base := []rex.RouteEntry{{
		Router:  "10.0.0.1",
		Nexthop: rex.MustAddr("10.3.4.5"),
		ASPath:  []uint32{2},
		Prefix:  rex.MustPrefix("4.5.0.0/16"),
	}}
	attrs := &bgp.PathAttrs{ASPath: bgp.Sequence(2), Nexthop: rex.MustAddr("10.3.4.5")}
	events := rex.Stream{
		{Time: t0, Type: rex.Withdraw, Peer: rex.MustAddr("10.0.0.1"),
			Prefix: rex.MustPrefix("4.5.0.0/16"), Attrs: attrs},
		{Time: t0.Add(time.Minute), Type: rex.Announce, Peer: rex.MustAddr("10.0.0.1"),
			Prefix: rex.MustPrefix("4.5.0.0/16"), Attrs: attrs},
	}
	anim := rex.Animate("isp", base, events, rex.AnimationConfig{})
	fmt.Println("frames:", anim.NumFrames)
	fmt.Println("changed frames:", len(anim.Frames))
	// Output:
	// frames: 750
	// changed frames: 2
}

// ExampleOriginConflicts flags a hijacked prefix by its multiple origins.
func ExampleOriginConflicts() {
	t0 := time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)
	mk := func(asns ...uint32) rex.Event {
		return rex.Event{
			Time: t0, Type: rex.Announce,
			Peer:   rex.MustAddr("10.0.0.1"),
			Prefix: rex.MustPrefix("20.1.0.0/16"),
			Attrs:  &bgp.PathAttrs{ASPath: bgp.Sequence(asns...)},
		}
	}
	conflicts := rex.OriginConflicts(rex.Stream{
		mk(11423, 209, 5000), // the rightful origin
		mk(11423, 666),       // the hijack
	})
	for _, c := range conflicts {
		fmt.Printf("%v announced by AS%d and AS%d\n", c.Prefix, c.Origins[0], c.Origins[1])
	}
	// Output:
	// 20.1.0.0/16 announced by AS666 and AS5000
}
